//! The page-walk subsystem: walkers, walk queues, and scheduling policies.
//!
//! This module is the paper's contribution. A pool of page-table walkers
//! services L2-TLB misses; how pending walks queue and which walker serves
//! which tenant is decided by a [`WalkPolicyKind`]:
//!
//! * [`WalkPolicyKind::SharedQueue`] — today's baseline: one monolithic FCFS
//!   queue feeding every walker. Walks from independent tenants interleave
//!   freely, which is the source of the slowdown quantified in §IV.
//! * [`WalkPolicyKind::PrivatePools`] — the idealized S-(TLB+PTW)
//!   configuration: every tenant gets its own walkers and queue (resources
//!   are multiplied by the caller's config).
//! * [`WalkPolicyKind::Partitioned`] with a [`StealMode`] — per-walker
//!   queues with walker ownership, implemented with the paper's FWA / TWM /
//!   WTM hardware tables:
//!     * [`StealMode::None`] — naive static partitioning (Fig. 11's
//!       "Static").
//!     * [`StealMode::Dws`] — dynamic walk stealing: a walker whose owner
//!       has nothing queued steals a pending walk from another tenant.
//!     * [`StealMode::DwsPlusPlus`] — DWS++: stealing is additionally
//!       allowed when the imbalance in queued walks exceeds an
//!       epoch-adaptive threshold ([`DwsPlusPlusParams`]).
//!
//! # Fidelity notes
//!
//! Per the paper (§VI.B), the `PEND_WALKS` counter is incremented on arrival
//! and decremented on walk *completion*, so it counts queued + in-service
//! walks; DWS++'s imbalance test uses it as-is. For the *steal eligibility*
//! check ("no page walk request is pending from its owner"), the default
//! follows the paper literally: `PEND_WALKS == 0`, i.e. the owner has
//! nothing queued *and* nothing in service. This is load-bearing — it is
//! what throttles a walk-intensive tenant's stealing and thereby shifts
//! walker (and, through fill rates, TLB) shares toward the lighter tenant
//! (Fig. 9). Clearing [`WalkConfig::strict_pend_check`] switches to a
//! relaxed queued-walks-only test as an ablation (more stealing, more
//! utilization, weaker isolation).

use std::collections::VecDeque;

use walksteal_mem::{Access, AccessKind, MemSystem};
use walksteal_sim_core::trace::{Observer, TraceEvent, TraceKind};
use walksteal_sim_core::{Cycle, LineAddr, Ppn, TenantId, Vpn, WalkerId};

use crate::frame::FrameAlloc;
use crate::mask::MaskState;
use crate::page_table::{PageTable, WalkPath};
use crate::pwc::PwCache;

/// Error returned by [`WalkSubsystem::try_enqueue`] when no queue slot is
/// available; the requester must stall and retry (back-pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkQueueFull;

impl std::fmt::Display for WalkQueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page-walk queue is full")
    }
}

impl std::error::Error for WalkQueueFull {}

/// Parameters controlling DWS++'s steal aggressiveness (paper Tables IV and
/// VII).
#[derive(Debug, Clone, PartialEq)]
pub struct DwsPlusPlusParams {
    /// Walk arrivals per epoch (paper default: 200).
    pub epoch_length: u32,
    /// `(max_ratio, diff_thres)` pairs, sorted ascending by `max_ratio`:
    /// the first row whose `max_ratio` is >= the measured walk-generation
    /// ratio supplies `DIFF_THRES`. A ratio beyond the last row disables
    /// stealing for the epoch.
    pub thresholds: Vec<(f64, f64)>,
    /// A walker may steal only while its own queue occupancy is at or below
    /// this fraction (paper default: 0.51).
    pub queue_thres: f64,
}

impl DwsPlusPlusParams {
    /// The paper's default parameters (Table IV).
    #[must_use]
    pub fn paper_default() -> Self {
        DwsPlusPlusParams {
            epoch_length: 200,
            thresholds: vec![(1.5, 0.4), (2.0, 0.6), (3.0, 0.8), (4.0, 0.9)],
            queue_thres: 0.51,
        }
    }

    /// The conservative variant of Table VII (tighter `QUEUE_THRES`).
    #[must_use]
    pub fn conservative() -> Self {
        DwsPlusPlusParams {
            queue_thres: 0.17,
            ..Self::paper_default()
        }
    }

    /// The aggressive variant of Table VII (`DIFF_THRES` pinned at 0.3,
    /// stealing never disabled by the ratio).
    #[must_use]
    pub fn aggressive() -> Self {
        DwsPlusPlusParams {
            epoch_length: 200,
            thresholds: vec![(f64::INFINITY, 0.3)],
            queue_thres: 0.51,
        }
    }

    /// `DIFF_THRES` for a measured walk-generation ratio, or `None` when the
    /// ratio lands beyond the table (stealing disabled).
    #[must_use]
    pub fn diff_thres_for(&self, ratio: f64) -> Option<f64> {
        self.thresholds
            .iter()
            .find(|(max_ratio, _)| ratio <= *max_ratio)
            .map(|&(_, thres)| thres)
    }
}

impl Default for DwsPlusPlusParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// When may a walker service a walk from a tenant other than its owner?
#[derive(Debug, Clone, PartialEq, Default)]
pub enum StealMode {
    /// Never (naive static partitioning).
    None,
    /// Only when the owner has nothing pending (DWS).
    #[default]
    Dws,
    /// DWS plus imbalance-triggered stealing (DWS++).
    DwsPlusPlus(DwsPlusPlusParams),
}

/// Which walk-scheduling organization to simulate.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum WalkPolicyKind {
    /// One monolithic FCFS queue shared by all walkers (baseline).
    #[default]
    SharedQueue,
    /// Exclusive walkers and queue per tenant (the S-(TLB+PTW) ideal);
    /// walkers are split evenly among tenants.
    PrivatePools,
    /// Per-walker queues with walker ownership and the given steal mode.
    Partitioned(StealMode),
}

/// Configuration of the [`WalkSubsystem`].
#[derive(Debug, Clone, PartialEq)]
pub struct WalkConfig {
    /// Number of page-table walkers (paper baseline: 16).
    pub n_walkers: usize,
    /// Total pending-walk queue entries across the subsystem (baseline: 192).
    pub queue_entries: usize,
    /// Number of co-running tenants.
    pub n_tenants: usize,
    /// Scheduling policy.
    pub policy: WalkPolicyKind,
    /// Page-walk-cache entries (baseline: 128).
    pub pwc_entries: usize,
    /// Cycles for the PWC lookup at walk start.
    pub pwc_latency: u64,
    /// Cycles of scheduling logic charged at each dispatch (the paper
    /// conservatively adds latency for the DWS/DWS++ table lookups).
    pub dispatch_overhead: u64,
    /// Use the paper's literal `PEND_WALKS == 0` steal test, which counts
    /// in-service walks (default). Clear for the relaxed queued-walks-only
    /// ablation. See module docs.
    pub strict_pend_check: bool,
}

impl Default for WalkConfig {
    /// The paper's baseline subsystem under the baseline policy.
    fn default() -> Self {
        WalkConfig {
            n_walkers: 16,
            queue_entries: 192,
            n_tenants: 2,
            policy: WalkPolicyKind::SharedQueue,
            pwc_entries: 128,
            pwc_latency: 2,
            dispatch_overhead: 2,
            strict_pend_check: true,
        }
    }
}

/// A pending walk with its bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Pending {
    tenant: TenantId,
    vpn: Vpn,
    arrival: Cycle,
    /// Snapshot of the requester's foreign-service counter at arrival, for
    /// measuring interleaving (how many foreign walks were serviced by
    /// walkers this request was eligible for, while it waited).
    foreign_at_arrival: u64,
}

/// A walk being serviced by a walker.
#[derive(Debug, Clone)]
struct InFlight {
    req: Pending,
    ppn: Ppn,
    stolen: bool,
    done_at: Cycle,
}

/// Result of a dispatch: the caller must schedule a walker-done event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchedWalk {
    /// The walker now servicing a walk.
    pub walker: WalkerId,
    /// When the walk finishes; pass back via
    /// [`WalkSubsystem::on_walker_done`] at this cycle.
    pub done_at: Cycle,
}

/// A finished walk, returned by [`WalkSubsystem::on_walker_done`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedWalk {
    /// Requesting tenant.
    pub tenant: TenantId,
    /// Translated virtual page.
    pub vpn: Vpn,
    /// Resulting physical frame.
    pub ppn: Ppn,
    /// Whether a walker owned by another tenant serviced it.
    pub stolen: bool,
    /// Cycles from arrival at the subsystem to completion.
    pub latency: u64,
}

/// An L2-TLB miss to hand to [`WalkSubsystem::try_enqueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkRequest {
    /// Requesting tenant.
    pub tenant: TenantId,
    /// Virtual page to translate.
    pub vpn: Vpn,
}

/// Mutable context the subsystem needs while dispatching walks: the page
/// tables to walk, the frame allocator backing first-touch allocation, the
/// memory system timing page-table accesses, (optionally) MASK state
/// controlling PTE cache bypass, and the observability sinks.
pub struct WalkContext<'a> {
    /// Per-tenant page tables, indexed by tenant id.
    pub page_tables: &'a mut [PageTable],
    /// Physical-frame allocator.
    pub frames: &'a mut FrameAlloc,
    /// The shared L2 + DRAM below the walkers.
    pub mem: &'a mut MemSystem,
    /// MASK token state, when the MASK comparison policy is active.
    pub mask: Option<&'a MaskState>,
    /// Trace/metrics sinks; [`Observer::off`] when observability is off.
    pub obs: &'a mut Observer,
}

/// Per-tenant statistics exported by the subsystem.
#[derive(Debug, Clone, Default)]
pub struct WalkStats {
    /// Walks accepted into the subsystem.
    pub enqueued: Vec<u64>,
    /// Walks completed.
    pub completed: Vec<u64>,
    /// Completed walks that were serviced by a foreign-owned walker.
    pub stolen: Vec<u64>,
    /// Sum over completed walks of (completion - arrival).
    pub total_latency: Vec<u64>,
    /// Sum over dispatched walks of (dispatch - arrival).
    pub total_queue_wait: Vec<u64>,
    /// Sum over dispatched walks of the number of *other-tenant* walks
    /// dispatched while they waited (the paper's interleaving metric).
    pub total_interleave: Vec<u64>,
    /// Rejected enqueue attempts (queue full), for back-pressure visibility.
    pub rejected: Vec<u64>,
    /// Accepted walks removed from the queues before dispatch by
    /// [`WalkSubsystem::cancel_tenant`] (tenant departure). Conservation
    /// under churn is `enqueued == completed + cancelled + pending`.
    pub cancelled: Vec<u64>,
}

impl WalkStats {
    fn new(n: usize) -> Self {
        WalkStats {
            enqueued: vec![0; n],
            completed: vec![0; n],
            stolen: vec![0; n],
            total_latency: vec![0; n],
            total_queue_wait: vec![0; n],
            total_interleave: vec![0; n],
            rejected: vec![0; n],
            cancelled: vec![0; n],
        }
    }

    /// Mean walks of other tenants that one of `tenant`'s walks waited for.
    #[must_use]
    pub fn mean_interleave(&self, tenant: TenantId) -> f64 {
        let n = self.completed[tenant.index()];
        if n == 0 {
            0.0
        } else {
            self.total_interleave[tenant.index()] as f64 / n as f64
        }
    }

    /// Mean arrival-to-completion walk latency for `tenant`.
    #[must_use]
    pub fn mean_latency(&self, tenant: TenantId) -> f64 {
        let n = self.completed[tenant.index()];
        if n == 0 {
            0.0
        } else {
            self.total_latency[tenant.index()] as f64 / n as f64
        }
    }

    /// Fraction of `tenant`'s completed walks serviced by stealing.
    #[must_use]
    pub fn stolen_fraction(&self, tenant: TenantId) -> f64 {
        let n = self.completed[tenant.index()];
        if n == 0 {
            0.0
        } else {
            self.stolen[tenant.index()] as f64 / n as f64
        }
    }
}

/// Queue organization per policy.
#[derive(Debug)]
enum Scheduler {
    Shared {
        queue: VecDeque<Pending>,
        capacity: usize,
    },
    PerTenant {
        queues: Vec<VecDeque<Pending>>,
        per_tenant_capacity: usize,
    },
    Partitioned(PartSched),
}

/// Concrete dispatch over the two [`PartScheduler`] implementations.
///
/// The partitioned scheduler sits on the walk subsystem's hottest paths
/// (every enqueue and every completion make several scheduler calls); an
/// enum keeps those calls statically dispatched and inlinable where a
/// `Box<dyn PartScheduler>` would force a virtual call per query.
#[derive(Debug)]
enum PartSched {
    Bitmap(BitmapScheduler),
    Reference(ReferenceScheduler),
}

/// Forwards every [`PartScheduler`] method through one `match`, so the
/// subsystem code reads the same as with a trait object but monomorphizes.
macro_rules! forward_part {
    () => {};
    (fn $name:ident(&self $(, $arg:ident : $ty:ty)*) $(-> $ret:ty)?; $($rest:tt)*) => {
        #[inline]
        fn $name(&self $(, $arg: $ty)*) $(-> $ret)? {
            match self {
                PartSched::Bitmap(p) => p.$name($($arg),*),
                PartSched::Reference(p) => p.$name($($arg),*),
            }
        }
        forward_part!($($rest)*);
    };
    (fn $name:ident(&mut self $(, $arg:ident : $ty:ty)*) $(-> $ret:ty)?; $($rest:tt)*) => {
        #[inline]
        fn $name(&mut self $(, $arg: $ty)*) $(-> $ret)? {
            match self {
                PartSched::Bitmap(p) => p.$name($($arg),*),
                PartSched::Reference(p) => p.$name($($arg),*),
            }
        }
        forward_part!($($rest)*);
    };
}

impl PartSched {
    forward_part! {
        fn steal(&self) -> &StealMode;
        fn owner(&self, w: usize) -> TenantId;
        fn owners_snapshot(&self) -> Vec<TenantId>;
        fn queue_len(&self, w: usize) -> usize;
        fn total_queued(&self) -> usize;
        fn pend(&self, t: usize) -> u32;
        fn dec_pend(&mut self, t: usize);
        fn set_stolen(&mut self, w: usize, stolen: bool);
        fn round_robin_owned(&mut self, tenant: TenantId) -> Option<usize>;
        fn least_loaded_owned(&self, tenant: TenantId) -> Option<usize>;
        fn most_loaded_owned(&self, tenant: TenantId) -> Option<usize>;
        fn push(&mut self, w: usize, p: Pending) -> Option<EpochRollover>;
        fn pop_from_walker(&mut self, w: usize) -> Pending;
        fn first_owned_idle(&self, tenant: TenantId, idle: u128) -> Option<usize>;
        fn first_foreign_idle(&self, tenant: TenantId, idle: u128) -> Option<usize>;
        fn repartition(&mut self, active: &[bool]);
        fn cancel_tenant(&mut self, tenant: TenantId) -> u64;
        fn is_naive(&self) -> bool;
        fn is_stolen(&self, w: usize) -> bool;
        fn steal_choice(&self, w: usize, strict_pend: bool, queue_entries: usize) -> Option<usize>;
        fn next_service(&self, w: usize, strict_pend: bool, queue_entries: usize) -> (Option<(usize, bool)>, bool);
    }
}

/// Which implementation backs [`WalkPolicyKind::Partitioned`].
///
/// Both implement the same (private) `PartScheduler` contract and make
/// bit-identical
/// decisions (pinned by `tests/walk_differential.rs`, the `BinaryHeapQueue`
/// pattern): [`SchedulerImpl::Reference`] is the original scan-based
/// FWA/TWM/WTM tables, [`SchedulerImpl::Optimized`] the bitmap + arena
/// data layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerImpl {
    /// Bitmap FWA/TWM/WTM tables and arena-indexed walk queues (default).
    #[default]
    Optimized,
    /// The original `Vec`-of-`VecDeque` tables, kept as the differential
    /// reference.
    Reference,
}

/// DWS++ epoch rollover observed during [`PartScheduler::push`]: the
/// pre-reset per-tenant arrival counts and the freshly selected
/// `DIFF_THRES`, reported so the subsystem can trace it.
struct EpochRollover {
    enq_epoch: Vec<u32>,
    diff_thres: Option<f64>,
}

/// The partitioned-scheduler contract: the paper's FWA / TWM / WTM hardware
/// tables plus the per-walker pending queues they summarize.
///
/// `idle` arguments carry the subsystem's idle-walker bitmask (bit `w` set
/// means walker `w` has no walk in service); tie-break rules follow the
/// reference implementation exactly — last-maximum for
/// [`least_loaded_owned`](Self::least_loaded_owned), first-minimum for
/// [`most_loaded_owned`](Self::most_loaded_owned), lowest walker index for
/// the idle searches, lowest tenant id with a strictly greater queue depth
/// for [`steal_victim`](Self::steal_victim).
trait PartScheduler: std::fmt::Debug {
    /// The configured steal mode.
    fn steal(&self) -> &StealMode;
    /// Queue slots per walker.
    fn per_walker_capacity(&self) -> usize;
    /// WTM: the owner tenant of `walker`.
    fn owner(&self, w: usize) -> TenantId;
    /// WTM snapshot, for inspection.
    fn owners_snapshot(&self) -> Vec<TenantId>;
    /// Pending walks queued at `walker`.
    fn queue_len(&self, w: usize) -> usize;
    /// Pending walks queued across all walkers.
    fn total_queued(&self) -> usize;
    /// TWM: `PEND_WALKS` for tenant `t` (queued + in-service).
    fn pend(&self, t: usize) -> u32;
    /// Decrements `PEND_WALKS` on walk completion (saturating).
    fn dec_pend(&mut self, t: usize);
    /// FWA: the `is_stolen` bit of `walker`.
    fn is_stolen(&self, w: usize) -> bool;
    /// Sets the `is_stolen` bit at dispatch.
    fn set_stolen(&mut self, w: usize, stolen: bool);
    /// Current `DIFF_THRES` (DWS++); `None` disables imbalance stealing.
    fn diff_thres(&self) -> Option<f64>;
    /// Max `PEND_WALKS` over every tenant but `t`.
    fn max_pend_other(&self, t: usize) -> u32;
    /// Round-robin choice among `tenant`'s walkers with a free queue slot
    /// (naive static organization only).
    fn round_robin_owned(&mut self, tenant: TenantId) -> Option<usize>;
    /// The owned walker with the most free queue slots, if it has any.
    fn least_loaded_owned(&self, tenant: TenantId) -> Option<usize>;
    /// The walker owned by `tenant` with the deepest queue, if non-empty.
    fn most_loaded_owned(&self, tenant: TenantId) -> Option<usize>;
    /// Whether `tenant` has any walk queued (FWA view).
    fn has_queued(&self, tenant: TenantId) -> bool;
    /// The foreign tenant with the most *queued* walks, if any.
    fn steal_victim(&self, not: TenantId) -> Option<TenantId>;
    /// Queues `p` at `walker`: queue push + FWA decrement + `PEND_WALKS`
    /// increment + DWS++ epoch accounting (returning the rollover, if one
    /// fired, for tracing).
    fn push(&mut self, w: usize, p: Pending) -> Option<EpochRollover>;
    /// Dequeues the head of `walker`'s queue (must be non-empty).
    fn pop_from_walker(&mut self, w: usize) -> Pending;
    /// The first idle walker owned by `tenant`.
    fn first_owned_idle(&self, tenant: TenantId, idle: u128) -> Option<usize>;
    /// The first idle walker *not* owned by `tenant`.
    fn first_foreign_idle(&self, tenant: TenantId, idle: u128) -> Option<usize>;
    /// Recomputes the TWM bitmaps and WTM owner map to split the walkers
    /// evenly among `active` tenants (paper SecVI.C). Queued and in-service
    /// walks are untouched — the system converges as they drain.
    fn repartition(&mut self, active: &[bool]);
    /// Removes every *queued* walk of `tenant` from every walker queue
    /// (tenant departure), preserving the FIFO order of the remaining
    /// walks. Per removal the walker's FWA free count is restored and the
    /// tenant's `PEND_WALKS` decremented; in-service walks are untouched.
    /// Returns the number of walks removed.
    fn cancel_tenant(&mut self, tenant: TenantId) -> u64;

    /// Whether this is the naive static organization: no FWA-guided
    /// enqueue, no sibling rebalancing, no stealing. Walkers serve only
    /// their own queue; arrivals are assigned round-robin. This is the
    /// paper's "Static" comparator (Fig. 11) — the FWA machinery is part
    /// of the DWS proposal, so the straw man must not benefit from it.
    fn is_naive(&self) -> bool {
        matches!(self.steal(), StealMode::None)
    }

    /// Decides whether walker `w` (whose own queue is empty or whose DWS++
    /// conditions allow) may steal, and from which victim walker's queue.
    /// Returns the victim walker index.
    fn steal_choice(&self, w: usize, strict_pend: bool, queue_entries: usize) -> Option<usize> {
        let owner = self.owner(w);
        let own_queue_empty = self.queue_len(w) == 0;

        let owner_has_work = if strict_pend {
            self.pend(owner.index()) > 0
        } else {
            self.has_queued(owner)
        };

        let allowed = match self.steal() {
            StealMode::None => false,
            StealMode::Dws => !owner_has_work,
            StealMode::DwsPlusPlus(params) => {
                if !owner_has_work {
                    true // the DWS condition
                } else if !own_queue_empty && self.is_stolen(w) {
                    // No consecutive steals while the owner has work.
                    false
                } else {
                    // QUEUE_THRES: don't steal while our own queue is loaded.
                    let cap = self.per_walker_capacity();
                    let occupancy = (cap - self.queue_len(w)) as f64;
                    let own_frac = 1.0 - occupancy / cap as f64;
                    if own_frac > params.queue_thres {
                        false
                    } else {
                        // DIFF_THRES on normalized PEND_WALKS imbalance.
                        match self.diff_thres() {
                            None => false,
                            Some(thres) => {
                                let own = self.pend(owner.index()) as f64;
                                let max_other = self.max_pend_other(owner.index()) as f64;
                                let diff = (max_other - own) / queue_entries as f64;
                                diff > thres
                            }
                        }
                    }
                }
            }
        };
        if !allowed {
            return None;
        }
        let victim = self.steal_victim(owner)?;
        self.most_loaded_owned(victim)
    }

    /// Resolves, in one call, what walker `w` services next after completing
    /// a walk: its own queue (possibly overridden by a DWS++ steal), the
    /// deepest sibling queue, a stolen walk, or nothing. Returns the walker
    /// to pop from plus the stolen flag, and whether a steal was attempted
    /// (so the caller can count `steal_attempts` exactly as before).
    fn next_service(
        &self,
        w: usize,
        strict_pend: bool,
        queue_entries: usize,
    ) -> (Option<(usize, bool)>, bool) {
        let owner = self.owner(w);
        if self.queue_len(w) > 0 {
            // Step 1: serve own queue... unless DWS++ decides the imbalance
            // warrants a steal instead.
            match self.steal_choice(w, strict_pend, queue_entries) {
                Some(victim) => (Some((victim, true)), true),
                None => (Some((w, false)), true),
            }
        } else if self.is_naive() {
            // Naive static: no sibling rebalancing, no stealing.
            (None, false)
        } else if let Some(sib) = self.most_loaded_owned(owner) {
            // Steps 2/3a: owner has walks queued on a sibling walker.
            (Some((sib, false)), false)
        } else {
            // Step 3b: steal, or go idle. Servicing-own resets the
            // is_stolen bit only when we actually serve, so idling leaves
            // it as-is.
            match self.steal_choice(w, strict_pend, queue_entries) {
                Some(victim) => (Some((victim, true)), true),
                None => (None, true),
            }
        }
    }
}

/// The original partitioned-scheduler state (static / DWS / DWS++): the
/// FWA, TWM and WTM hardware tables as plain `Vec`s and the per-walker
/// queues as `VecDeque`s, every selection a linear scan. Kept verbatim as
/// the differential reference for [`BitmapScheduler`].
#[derive(Debug)]
struct ReferenceScheduler {
    /// FWA: free queue slots per walker.
    fwa_free: Vec<u32>,
    /// FWA: the per-walker `is_stolen` bit.
    fwa_is_stolen: Vec<bool>,
    /// TWM: walker-ownership bitmap per tenant.
    twm_owned: Vec<Vec<bool>>,
    /// TWM: `PEND_WALKS` per tenant (queued + in-service; see module docs).
    twm_pend: Vec<u32>,
    /// TWM: `ENQ_EPOCH` per tenant (DWS++).
    twm_enq_epoch: Vec<u32>,
    /// WTM: owner tenant per walker.
    wtm: Vec<TenantId>,
    /// The per-walker pending queues the FWA summarizes.
    queues: Vec<VecDeque<Pending>>,
    per_walker_capacity: usize,
    /// Global arrival counter for epochs (DWS++).
    epoch_counter: u32,
    /// Current `DIFF_THRES`; `None` disables imbalance stealing.
    diff_thres: Option<f64>,
    steal: StealMode,
    /// Round-robin arrival cursor for the naive static organization.
    rr_cursor: usize,
    /// Reusable buffer for [`Part::round_robin_owned`].
    rr_scratch: Vec<usize>,
}

impl ReferenceScheduler {
    fn new(n_walkers: usize, n_tenants: usize, queue_entries: usize, steal: StealMode) -> Self {
        let per_walker_capacity = queue_entries / n_walkers;
        assert!(per_walker_capacity > 0, "queue entries < walkers");
        let walkers_per_tenant = n_walkers / n_tenants;
        assert!(walkers_per_tenant > 0, "walkers < tenants");
        let mut twm_owned = vec![vec![false; n_walkers]; n_tenants];
        let mut wtm = vec![TenantId(0); n_walkers];
        for w in 0..n_walkers {
            let owner = (w / walkers_per_tenant).min(n_tenants - 1);
            twm_owned[owner][w] = true;
            wtm[w] = TenantId(owner as u8);
        }
        let initial_diff_thres = match &steal {
            StealMode::DwsPlusPlus(p) => p.diff_thres_for(1.0),
            _ => None,
        };
        ReferenceScheduler {
            fwa_free: vec![per_walker_capacity as u32; n_walkers],
            fwa_is_stolen: vec![false; n_walkers],
            twm_owned,
            twm_pend: vec![0; n_tenants],
            twm_enq_epoch: vec![0; n_tenants],
            wtm,
            queues: (0..n_walkers).map(|_| VecDeque::new()).collect(),
            per_walker_capacity,
            epoch_counter: 0,
            diff_thres: initial_diff_thres,
            steal,
            rr_cursor: 0,
            rr_scratch: Vec::new(),
        }
    }
}

impl PartScheduler for ReferenceScheduler {
    fn steal(&self) -> &StealMode {
        &self.steal
    }

    fn per_walker_capacity(&self) -> usize {
        self.per_walker_capacity
    }

    fn owner(&self, w: usize) -> TenantId {
        self.wtm[w]
    }

    fn owners_snapshot(&self) -> Vec<TenantId> {
        self.wtm.clone()
    }

    fn queue_len(&self, w: usize) -> usize {
        self.queues[w].len()
    }

    fn total_queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn pend(&self, t: usize) -> u32 {
        self.twm_pend[t]
    }

    fn dec_pend(&mut self, t: usize) {
        self.twm_pend[t] = self.twm_pend[t].saturating_sub(1);
    }

    fn is_stolen(&self, w: usize) -> bool {
        self.fwa_is_stolen[w]
    }

    fn set_stolen(&mut self, w: usize, stolen: bool) {
        self.fwa_is_stolen[w] = stolen;
    }

    fn diff_thres(&self) -> Option<f64> {
        self.diff_thres
    }

    fn max_pend_other(&self, t: usize) -> u32 {
        self.twm_pend
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != t)
            .map(|(_, &v)| v)
            .max()
            .unwrap_or(0)
    }

    fn round_robin_owned(&mut self, tenant: TenantId) -> Option<usize> {
        let mut owned = std::mem::take(&mut self.rr_scratch);
        owned.clear();
        owned.extend(
            self.twm_owned[tenant.index()]
                .iter()
                .enumerate()
                .filter(|&(_, &o)| o)
                .map(|(w, _)| w),
        );
        let mut chosen = None;
        for i in 0..owned.len() {
            let w = owned[(self.rr_cursor + i) % owned.len()];
            if self.fwa_free[w] > 0 {
                self.rr_cursor = (self.rr_cursor + i + 1) % owned.len();
                chosen = Some(w);
                break;
            }
        }
        self.rr_scratch = owned;
        chosen
    }

    /// The owned walker with the most free queue slots, if it has any.
    fn least_loaded_owned(&self, tenant: TenantId) -> Option<usize> {
        self.twm_owned[tenant.index()]
            .iter()
            .enumerate()
            .filter(|&(_, &owned)| owned)
            .max_by_key(|&(w, _)| self.fwa_free[w])
            .filter(|&(w, _)| self.fwa_free[w] > 0)
            .map(|(w, _)| w)
    }

    /// The walker owned by `tenant` with the deepest queue, if non-empty.
    fn most_loaded_owned(&self, tenant: TenantId) -> Option<usize> {
        self.twm_owned[tenant.index()]
            .iter()
            .enumerate()
            .filter(|&(_, &owned)| owned)
            .min_by_key(|&(w, _)| self.fwa_free[w])
            .filter(|&(w, _)| !self.queues[w].is_empty())
            .map(|(w, _)| w)
    }

    /// Whether `tenant` has any walk queued (FWA view).
    fn has_queued(&self, tenant: TenantId) -> bool {
        self.twm_owned[tenant.index()]
            .iter()
            .enumerate()
            .any(|(w, &owned)| owned && !self.queues[w].is_empty())
    }

    /// The foreign tenant with the most *queued* walks, if any.
    fn steal_victim(&self, not: TenantId) -> Option<TenantId> {
        let mut best: Option<(TenantId, usize)> = None;
        for t in 0..self.twm_pend.len() {
            let tenant = TenantId(t as u8);
            if tenant == not {
                continue;
            }
            let queued: usize = self.twm_owned[t]
                .iter()
                .enumerate()
                .filter(|&(_, &owned)| owned)
                .map(|(w, _)| self.queues[w].len())
                .sum();
            if queued > 0 && best.is_none_or(|(_, b)| queued > b) {
                best = Some((tenant, queued));
            }
        }
        best.map(|(t, _)| t)
    }

    fn push(&mut self, w: usize, p: Pending) -> Option<EpochRollover> {
        let t = p.tenant.index();
        self.queues[w].push_back(p);
        self.fwa_free[w] -= 1;
        self.twm_pend[t] += 1;

        // DWS++ epoch accounting.
        if let StealMode::DwsPlusPlus(params) = &self.steal {
            self.twm_enq_epoch[t] += 1;
            self.epoch_counter += 1;
            if self.epoch_counter >= params.epoch_length {
                let max = self.twm_enq_epoch.iter().copied().max().unwrap_or(0) as f64;
                let min = self.twm_enq_epoch.iter().copied().min().unwrap_or(0).max(1) as f64;
                self.diff_thres = params.diff_thres_for(max / min);
                let rollover = EpochRollover {
                    enq_epoch: self.twm_enq_epoch.clone(),
                    diff_thres: self.diff_thres,
                };
                self.epoch_counter = 0;
                self.twm_enq_epoch.iter_mut().for_each(|c| *c = 0);
                return Some(rollover);
            }
        }
        None
    }

    fn pop_from_walker(&mut self, w: usize) -> Pending {
        let p = self.queues[w].pop_front().expect("queue checked non-empty");
        self.fwa_free[w] += 1;
        p
    }

    fn first_owned_idle(&self, tenant: TenantId, idle: u128) -> Option<usize> {
        self.twm_owned[tenant.index()]
            .iter()
            .enumerate()
            .find(|&(w, &owned)| owned && (idle >> w) & 1 == 1)
            .map(|(w, _)| w)
    }

    fn first_foreign_idle(&self, tenant: TenantId, idle: u128) -> Option<usize> {
        (0..self.wtm.len()).find(|&w| (idle >> w) & 1 == 1 && self.wtm[w] != tenant)
    }

    /// Recomputes the TWM bitmaps and WTM owner map to split the walkers
    /// evenly among `active` tenants (paper SecVI.C: dynamically changing
    /// the number of tenants). Queued and in-service walks are untouched —
    /// the system converges as they drain.
    fn repartition(&mut self, active: &[bool]) {
        let n_walkers = self.wtm.len();
        let active_ids: Vec<usize> = active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(t, _)| t)
            .collect();
        assert!(!active_ids.is_empty(), "at least one tenant must be active");
        let per = n_walkers / active_ids.len();
        assert!(per > 0, "more active tenants than walkers");
        for bitmap in &mut self.twm_owned {
            bitmap.iter_mut().for_each(|b| *b = false);
        }
        for w in 0..n_walkers {
            let slot = (w / per).min(active_ids.len() - 1);
            let owner = active_ids[slot];
            self.twm_owned[owner][w] = true;
            self.wtm[w] = TenantId(owner as u8);
        }
    }

    fn cancel_tenant(&mut self, tenant: TenantId) -> u64 {
        let mut removed = 0u64;
        for w in 0..self.queues.len() {
            let before = self.queues[w].len();
            self.queues[w].retain(|p| p.tenant != tenant);
            let r = (before - self.queues[w].len()) as u32;
            self.fwa_free[w] += r;
            removed += u64::from(r);
        }
        self.twm_pend[tenant.index()] -= removed as u32;
        removed
    }
}

/// Sentinel for "no slot" in the arena-queue links.
const NIL: u32 = u32::MAX;

/// The optimized partitioned scheduler: the FWA / TWM / WTM tables as
/// fixed-size arrays and `u64` bitmaps, and the pending-walk queues as
/// intrusive FIFO lists threaded through one pre-allocated arena of
/// `u32`-indexed slots (no per-walk allocation in steady state). Candidate
/// selection is mask-and-`trailing_zeros` instead of a scan, and
/// [`steal_victim`](PartScheduler::steal_victim) reads an incrementally
/// maintained per-tenant queued count. Every decision is bit-identical to
/// [`ReferenceScheduler`] (pinned by `tests/walk_differential.rs`).
#[derive(Debug)]
struct BitmapScheduler {
    /// TWM: walker-ownership bitmap per tenant (bit `w` set = owned).
    owned: Vec<u64>,
    /// WTM: owner tenant per walker.
    wtm: Vec<TenantId>,
    /// FWA: free queue slots per walker.
    fwa_free: Vec<u32>,
    /// FWA: the per-walker `is_stolen` bits.
    stolen_bits: u64,
    /// Bit `w` set while walker `w`'s queue is non-empty.
    nonempty: u64,
    /// TWM: `PEND_WALKS` per tenant (queued + in-service).
    pend: Vec<u32>,
    /// Queued (not in-service) walks per owning tenant, maintained on
    /// push/pop and rebuilt on repartition, so `steal_victim` is scan-free.
    queued_per_tenant: Vec<u32>,
    /// TWM: `ENQ_EPOCH` per tenant (DWS++).
    enq_epoch: Vec<u32>,
    /// Global arrival counter for epochs (DWS++).
    epoch_counter: u32,
    /// Current `DIFF_THRES`; `None` disables imbalance stealing.
    diff_thres: Option<f64>,
    /// Integer equivalent of `DIFF_THRES`: the smallest pend-count
    /// imbalance whose normalized value exceeds the threshold. Recomputed
    /// on every `diff_thres` change so the steal decision needs no per-call
    /// float division. `None` = no imbalance passes (stealing disabled).
    diff_min: Option<i64>,
    /// `frac_over_thres[len]` = whether a queue of depth `len` exceeds
    /// DWS++'s `QUEUE_THRES` occupancy fraction, precomputed with the
    /// reference's exact f64 expression (empty unless DWS++).
    frac_over_thres: Vec<bool>,
    steal: StealMode,
    per_walker_capacity: usize,
    /// The raw `queue_entries` config the thresholds were derived from.
    queue_entries: usize,
    /// Round-robin arrival cursor for the naive static organization.
    rr_cursor: usize,
    /// Reusable buffer for [`PartScheduler::round_robin_owned`].
    rr_scratch: Vec<usize>,
    /// Arena slots; `links` threads both the per-walker FIFOs
    /// (`head`/`tail`) and the free list (`free_head`).
    slots: Vec<Pending>,
    links: Vec<u32>,
    free_head: u32,
    head: Vec<u32>,
    tail: Vec<u32>,
    lens: Vec<u32>,
}

impl BitmapScheduler {
    fn new(n_walkers: usize, n_tenants: usize, queue_entries: usize, steal: StealMode) -> Self {
        assert!(n_walkers <= 64, "BitmapScheduler supports at most 64 walkers");
        let per_walker_capacity = queue_entries / n_walkers;
        assert!(per_walker_capacity > 0, "queue entries < walkers");
        let walkers_per_tenant = n_walkers / n_tenants;
        assert!(walkers_per_tenant > 0, "walkers < tenants");
        let mut owned = vec![0u64; n_tenants];
        let mut wtm = vec![TenantId(0); n_walkers];
        for w in 0..n_walkers {
            let t = (w / walkers_per_tenant).min(n_tenants - 1);
            owned[t] |= 1 << w;
            wtm[w] = TenantId(t as u8);
        }
        let initial_diff_thres = match &steal {
            StealMode::DwsPlusPlus(p) => p.diff_thres_for(1.0),
            _ => None,
        };
        let frac_over_thres = match &steal {
            StealMode::DwsPlusPlus(p) => (0..=per_walker_capacity)
                .map(|len| {
                    // Byte-for-byte the reference's occupancy expression,
                    // evaluated once per possible depth.
                    let occupancy = (per_walker_capacity - len) as f64;
                    let own_frac = 1.0 - occupancy / per_walker_capacity as f64;
                    own_frac > p.queue_thres
                })
                .collect(),
            _ => Vec::new(),
        };
        let capacity = per_walker_capacity * n_walkers;
        let placeholder = Pending {
            tenant: TenantId(0),
            vpn: Vpn(0),
            arrival: Cycle::ZERO,
            foreign_at_arrival: 0,
        };
        // Free list: slot i links to i+1, last to NIL.
        let mut links: Vec<u32> = (1..=capacity as u32).collect();
        links[capacity - 1] = NIL;
        let mut sched = BitmapScheduler {
            owned,
            wtm,
            fwa_free: vec![per_walker_capacity as u32; n_walkers],
            stolen_bits: 0,
            nonempty: 0,
            pend: vec![0; n_tenants],
            queued_per_tenant: vec![0; n_tenants],
            enq_epoch: vec![0; n_tenants],
            epoch_counter: 0,
            diff_thres: initial_diff_thres,
            diff_min: None,
            frac_over_thres,
            steal,
            per_walker_capacity,
            queue_entries,
            rr_cursor: 0,
            rr_scratch: Vec::new(),
            slots: vec![placeholder; capacity],
            links,
            free_head: 0,
            head: vec![NIL; n_walkers],
            tail: vec![NIL; n_walkers],
            lens: vec![0; n_walkers],
        };
        sched.recompute_diff_min();
        sched
    }

    /// Recomputes [`diff_min`](Self::diff_min) from the current
    /// `DIFF_THRES`. `d ↦ d / queue_entries` is monotone in the integer `d`
    /// (f64 division by a positive constant), so the smallest passing `d`
    /// splits the integer imbalances exactly where the reference's per-call
    /// float test does. Pend counts are bounded by the queue capacity plus
    /// one in-service walk per walker, so the scan range covers every
    /// reachable imbalance.
    fn recompute_diff_min(&mut self) {
        self.diff_min = self.diff_thres.and_then(|thres| {
            let qe = self.queue_entries as f64;
            let bound = self.queue_entries as i64 + 64 + 1;
            (-bound..=bound).find(|&d| (d as f64) / qe > thres)
        });
    }

    /// One-pass steal decision over the FWA/TWM bitmaps using the
    /// precomputed integer thresholds. Decision-identical to the provided
    /// [`PartScheduler::steal_choice`] (pinned by the differential suite);
    /// `own_len` is walker `w`'s queue depth, passed in so callers that
    /// already read it don't reload.
    fn steal_target(&self, w: usize, owner: TenantId, own_len: u32, strict_pend: bool) -> Option<usize> {
        let owner_has_work = if strict_pend {
            self.pend[owner.index()] > 0
        } else {
            self.owned[owner.index()] & self.nonempty != 0
        };
        let allowed = match &self.steal {
            StealMode::None => false,
            StealMode::Dws => !owner_has_work,
            StealMode::DwsPlusPlus(_) => {
                if !owner_has_work {
                    true // the DWS condition
                } else if own_len > 0 && (self.stolen_bits >> w) & 1 == 1 {
                    // No consecutive steals while the owner has work.
                    false
                } else if self.frac_over_thres[own_len as usize] {
                    // QUEUE_THRES: don't steal while our own queue is loaded.
                    false
                } else {
                    // DIFF_THRES on the PEND_WALKS imbalance, in integers.
                    match self.diff_min {
                        None => false,
                        Some(dmin) => {
                            let own = i64::from(self.pend[owner.index()]);
                            let max_other = i64::from(self.max_pend_other(owner.index()));
                            max_other - own >= dmin
                        }
                    }
                }
            }
        };
        if !allowed {
            return None;
        }
        let victim = self.steal_victim(owner)?;
        self.most_loaded_owned(victim)
    }
}

impl PartScheduler for BitmapScheduler {
    fn steal(&self) -> &StealMode {
        &self.steal
    }

    fn per_walker_capacity(&self) -> usize {
        self.per_walker_capacity
    }

    fn owner(&self, w: usize) -> TenantId {
        self.wtm[w]
    }

    fn owners_snapshot(&self) -> Vec<TenantId> {
        self.wtm.clone()
    }

    fn queue_len(&self, w: usize) -> usize {
        self.lens[w] as usize
    }

    fn total_queued(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    fn pend(&self, t: usize) -> u32 {
        self.pend[t]
    }

    fn dec_pend(&mut self, t: usize) {
        self.pend[t] = self.pend[t].saturating_sub(1);
    }

    fn is_stolen(&self, w: usize) -> bool {
        (self.stolen_bits >> w) & 1 == 1
    }

    fn set_stolen(&mut self, w: usize, stolen: bool) {
        if stolen {
            self.stolen_bits |= 1 << w;
        } else {
            self.stolen_bits &= !(1 << w);
        }
    }

    fn diff_thres(&self) -> Option<f64> {
        self.diff_thres
    }

    fn max_pend_other(&self, t: usize) -> u32 {
        self.pend
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != t)
            .map(|(_, &v)| v)
            .max()
            .unwrap_or(0)
    }

    fn round_robin_owned(&mut self, tenant: TenantId) -> Option<usize> {
        let mut owned = std::mem::take(&mut self.rr_scratch);
        owned.clear();
        let mut m = self.owned[tenant.index()];
        while m != 0 {
            owned.push(m.trailing_zeros() as usize);
            m &= m - 1;
        }
        let mut chosen = None;
        for i in 0..owned.len() {
            let w = owned[(self.rr_cursor + i) % owned.len()];
            if self.fwa_free[w] > 0 {
                self.rr_cursor = (self.rr_cursor + i + 1) % owned.len();
                chosen = Some(w);
                break;
            }
        }
        self.rr_scratch = owned;
        chosen
    }

    fn least_loaded_owned(&self, tenant: TenantId) -> Option<usize> {
        // The reference's `max_by_key` keeps the *last* maximum: `>=`.
        let mut m = self.owned[tenant.index()];
        let mut best = None;
        let mut best_free = 0u32;
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            m &= m - 1;
            if best.is_none() || self.fwa_free[w] >= best_free {
                best = Some(w);
                best_free = self.fwa_free[w];
            }
        }
        best.filter(|_| best_free > 0)
    }

    fn most_loaded_owned(&self, tenant: TenantId) -> Option<usize> {
        // The reference's `min_by_key` keeps the *first* minimum: `<`.
        let mut m = self.owned[tenant.index()];
        let mut best = None;
        let mut best_free = u32::MAX;
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            m &= m - 1;
            if best.is_none() || self.fwa_free[w] < best_free {
                best = Some(w);
                best_free = self.fwa_free[w];
            }
        }
        best.filter(|&w| (self.nonempty >> w) & 1 == 1)
    }

    fn has_queued(&self, tenant: TenantId) -> bool {
        self.owned[tenant.index()] & self.nonempty != 0
    }

    fn steal_victim(&self, not: TenantId) -> Option<TenantId> {
        let mut best: Option<(TenantId, u32)> = None;
        for t in 0..self.pend.len() {
            let tenant = TenantId(t as u8);
            if tenant == not {
                continue;
            }
            let queued = self.queued_per_tenant[t];
            if queued > 0 && best.is_none_or(|(_, b)| queued > b) {
                best = Some((tenant, queued));
            }
        }
        best.map(|(t, _)| t)
    }

    fn push(&mut self, w: usize, p: Pending) -> Option<EpochRollover> {
        let t = p.tenant.index();
        debug_assert_ne!(self.free_head, NIL, "arena full despite FWA check");
        let idx = self.free_head as usize;
        self.free_head = self.links[idx];
        self.slots[idx] = p;
        self.links[idx] = NIL;
        if self.tail[w] == NIL {
            self.head[w] = idx as u32;
        } else {
            self.links[self.tail[w] as usize] = idx as u32;
        }
        self.tail[w] = idx as u32;
        self.lens[w] += 1;
        self.nonempty |= 1 << w;
        self.fwa_free[w] -= 1;
        self.pend[t] += 1;
        self.queued_per_tenant[self.wtm[w].index()] += 1;

        // DWS++ epoch accounting.
        if let StealMode::DwsPlusPlus(params) = &self.steal {
            self.enq_epoch[t] += 1;
            self.epoch_counter += 1;
            if self.epoch_counter >= params.epoch_length {
                let max = self.enq_epoch.iter().copied().max().unwrap_or(0) as f64;
                let min = self.enq_epoch.iter().copied().min().unwrap_or(0).max(1) as f64;
                self.diff_thres = params.diff_thres_for(max / min);
                self.recompute_diff_min();
                let rollover = EpochRollover {
                    enq_epoch: self.enq_epoch.clone(),
                    diff_thres: self.diff_thres,
                };
                self.epoch_counter = 0;
                self.enq_epoch.iter_mut().for_each(|c| *c = 0);
                return Some(rollover);
            }
        }
        None
    }

    fn pop_from_walker(&mut self, w: usize) -> Pending {
        debug_assert_ne!(self.head[w], NIL, "queue checked non-empty");
        let idx = self.head[w] as usize;
        self.head[w] = self.links[idx];
        if self.head[w] == NIL {
            self.tail[w] = NIL;
            self.nonempty &= !(1 << w);
        }
        self.links[idx] = self.free_head;
        self.free_head = idx as u32;
        self.lens[w] -= 1;
        self.fwa_free[w] += 1;
        self.queued_per_tenant[self.wtm[w].index()] -= 1;
        self.slots[idx]
    }

    fn steal_choice(&self, w: usize, strict_pend: bool, queue_entries: usize) -> Option<usize> {
        debug_assert_eq!(queue_entries, self.queue_entries, "thresholds stale");
        self.steal_target(w, self.wtm[w], self.lens[w], strict_pend)
    }

    fn next_service(
        &self,
        w: usize,
        strict_pend: bool,
        queue_entries: usize,
    ) -> (Option<(usize, bool)>, bool) {
        debug_assert_eq!(queue_entries, self.queue_entries, "thresholds stale");
        let owner = self.wtm[w];
        let own_len = self.lens[w];
        if own_len > 0 {
            match self.steal_target(w, owner, own_len, strict_pend) {
                Some(victim) => (Some((victim, true)), true),
                None => (Some((w, false)), true),
            }
        } else if self.is_naive() {
            (None, false)
        } else if let Some(sib) = self.most_loaded_owned(owner) {
            (Some((sib, false)), false)
        } else {
            match self.steal_target(w, owner, 0, strict_pend) {
                Some(victim) => (Some((victim, true)), true),
                None => (None, true),
            }
        }
    }

    fn first_owned_idle(&self, tenant: TenantId, idle: u128) -> Option<usize> {
        let m = self.owned[tenant.index()] & idle as u64;
        (m != 0).then(|| m.trailing_zeros() as usize)
    }

    fn first_foreign_idle(&self, tenant: TenantId, idle: u128) -> Option<usize> {
        // The idle mask only carries bits below `n_walkers`, so masking off
        // the owned walkers leaves exactly the idle foreign ones.
        let m = idle as u64 & !self.owned[tenant.index()];
        (m != 0).then(|| m.trailing_zeros() as usize)
    }

    fn repartition(&mut self, active: &[bool]) {
        let n_walkers = self.wtm.len();
        let active_ids: Vec<usize> = active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(t, _)| t)
            .collect();
        assert!(!active_ids.is_empty(), "at least one tenant must be active");
        let per = n_walkers / active_ids.len();
        assert!(per > 0, "more active tenants than walkers");
        self.owned.iter_mut().for_each(|m| *m = 0);
        for w in 0..n_walkers {
            let slot = (w / per).min(active_ids.len() - 1);
            let owner = active_ids[slot];
            self.owned[owner] |= 1 << w;
            self.wtm[w] = TenantId(owner as u8);
        }
        // Ownership moved under live queues; rebuild the per-tenant queued
        // counts against the new owner map.
        self.queued_per_tenant.iter_mut().for_each(|c| *c = 0);
        for w in 0..n_walkers {
            self.queued_per_tenant[self.wtm[w].index()] += self.lens[w];
        }
    }

    fn cancel_tenant(&mut self, tenant: TenantId) -> u64 {
        let mut removed = 0u64;
        for w in 0..self.wtm.len() {
            let mut prev = NIL;
            let mut cur = self.head[w];
            while cur != NIL {
                let next = self.links[cur as usize];
                if self.slots[cur as usize].tenant == tenant {
                    // Unlink `cur` from the FIFO and return it to the free
                    // list; the surviving walks keep their relative order.
                    if prev == NIL {
                        self.head[w] = next;
                    } else {
                        self.links[prev as usize] = next;
                    }
                    if self.tail[w] == cur {
                        self.tail[w] = prev;
                    }
                    self.links[cur as usize] = self.free_head;
                    self.free_head = cur;
                    self.lens[w] -= 1;
                    self.fwa_free[w] += 1;
                    self.queued_per_tenant[self.wtm[w].index()] -= 1;
                    removed += 1;
                } else {
                    prev = cur;
                }
                cur = next;
            }
            if self.head[w] == NIL {
                self.nonempty &= !(1 << w);
            }
        }
        self.pend[tenant.index()] -= removed as u32;
        removed
    }
}

/// The page-walk subsystem: walkers + queues + policy + PWC.
///
/// Drive it from a discrete-event loop:
///
/// 1. On an L2-TLB miss, call [`try_enqueue`](Self::try_enqueue). If it
///    returns a [`DispatchedWalk`], schedule a walker-done event at its
///    `done_at` cycle (a full queue instead returns [`WalkQueueFull`] —
///    retry later).
/// 2. When a walker-done event fires, call
///    [`on_walker_done`](Self::on_walker_done); it yields the
///    [`CompletedWalk`] (fill your TLBs, wake your warps) and possibly a new
///    [`DispatchedWalk`] to schedule.
#[derive(Debug)]
pub struct WalkSubsystem {
    cfg: WalkConfig,
    pwc: PwCache,
    walkers: Vec<Option<InFlight>>,
    /// Bit `w` set while walker `w` is idle (mirrors `walkers[w].is_none()`);
    /// idle-walker searches are mask operations instead of scans.
    idle_mask: u128,
    sched: Scheduler,
    stats: WalkStats,
    /// Per tenant T: walks of *other* tenants dispatched onto walkers that
    /// T's requests are eligible to be serviced by (all walkers under the
    /// shared queue; T's owned walkers under partitioned policies). The
    /// difference of this counter between a walk's arrival and its dispatch
    /// is the paper's interleaving metric.
    foreign_service: Vec<u64>,
    /// Time-integral of walkers busy per serviced tenant, for PW share.
    busy_integral: Vec<f64>,
    busy_count: Vec<usize>,
    last_busy_update: Cycle,
    /// Reusable page-table walk buffer for [`Self::dispatch`].
    path_scratch: WalkPath,
    /// Reusable buffers for the dispatch PTE chain: the line addresses of
    /// the levels below the PWC hit, and their batched access results.
    chain_lines: Vec<LineAddr>,
    chain_out: Vec<Access>,
}

impl WalkSubsystem {
    /// Creates an idle subsystem.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero walkers/queue
    /// entries/tenants, more than 128 walkers, or fewer walkers than
    /// tenants in a partitioned policy).
    #[must_use]
    pub fn new(cfg: WalkConfig) -> Self {
        Self::with_scheduler_impl(cfg, SchedulerImpl::Optimized)
    }

    /// Like [`WalkSubsystem::new`] but with the partitioned scheduler backed
    /// by the given implementation. [`SchedulerImpl::Reference`] exists for
    /// differential stress testing; non-partitioned policies are unaffected
    /// by the choice.
    ///
    /// # Panics
    ///
    /// As [`WalkSubsystem::new`].
    #[must_use]
    pub fn with_scheduler_impl(cfg: WalkConfig, imp: SchedulerImpl) -> Self {
        assert!(cfg.n_walkers > 0, "need at least one walker");
        assert!(cfg.n_walkers <= 128, "at most 128 walkers supported");
        assert!(cfg.queue_entries > 0, "need at least one queue entry");
        assert!(cfg.n_tenants > 0, "need at least one tenant");
        let sched = match &cfg.policy {
            WalkPolicyKind::SharedQueue => Scheduler::Shared {
                queue: VecDeque::new(),
                capacity: cfg.queue_entries,
            },
            WalkPolicyKind::PrivatePools => {
                assert!(
                    cfg.n_walkers >= cfg.n_tenants,
                    "walkers < tenants in private pools"
                );
                Scheduler::PerTenant {
                    queues: (0..cfg.n_tenants).map(|_| VecDeque::new()).collect(),
                    per_tenant_capacity: cfg.queue_entries / cfg.n_tenants,
                }
            }
            WalkPolicyKind::Partitioned(steal) => {
                // The bitmap layout carries ownership masks in `u64`s; fall
                // back to the reference tables beyond 64 walkers.
                let part = if imp == SchedulerImpl::Optimized && cfg.n_walkers <= 64 {
                    PartSched::Bitmap(BitmapScheduler::new(
                        cfg.n_walkers,
                        cfg.n_tenants,
                        cfg.queue_entries,
                        steal.clone(),
                    ))
                } else {
                    PartSched::Reference(ReferenceScheduler::new(
                        cfg.n_walkers,
                        cfg.n_tenants,
                        cfg.queue_entries,
                        steal.clone(),
                    ))
                };
                Scheduler::Partitioned(part)
            }
        };
        let n = cfg.n_tenants;
        WalkSubsystem {
            pwc: PwCache::new(cfg.pwc_entries),
            walkers: vec![None; cfg.n_walkers],
            idle_mask: u128::MAX >> (128 - cfg.n_walkers),
            sched,
            stats: WalkStats::new(n),
            foreign_service: vec![0; n],
            busy_integral: vec![0.0; n],
            busy_count: vec![0; n],
            last_busy_update: Cycle::ZERO,
            path_scratch: WalkPath::default(),
            chain_lines: Vec::new(),
            chain_out: Vec::new(),
            cfg,
        }
    }

    /// The owner of `walker` under partitioned policies; under shared
    /// policies every walker notionally serves every tenant, reported as the
    /// requesting tenant itself.
    fn owner_of(&self, walker: usize) -> TenantId {
        match &self.sched {
            Scheduler::Partitioned(p) => p.owner(walker),
            Scheduler::PerTenant { queues, .. } => {
                let per = self.cfg.n_walkers / queues.len();
                TenantId(((walker / per).min(queues.len() - 1)) as u8)
            }
            Scheduler::Shared { .. } => TenantId(0),
        }
    }

    fn advance_busy(&mut self, now: Cycle) {
        let dt = now.saturating_since(self.last_busy_update) as f64;
        if dt > 0.0 {
            for (acc, &c) in self.busy_integral.iter_mut().zip(&self.busy_count) {
                *acc += c as f64 * dt;
            }
            self.last_busy_update = self.last_busy_update.max(now);
        }
    }

    /// Credits a dispatch of `tenant`'s walk on `walker` against the
    /// foreign-service counters of every tenant it could delay.
    fn note_foreign_service(&mut self, walker: usize, tenant: TenantId) {
        match &self.sched {
            Scheduler::Shared { .. } => {
                for t in 0..self.foreign_service.len() {
                    if t != tenant.index() {
                        self.foreign_service[t] += 1;
                    }
                }
            }
            // Private pools never service foreign walks.
            Scheduler::PerTenant { .. } => {}
            Scheduler::Partitioned(p) => {
                let owner = p.owner(walker);
                if owner != tenant {
                    self.foreign_service[owner.index()] += 1;
                }
            }
        }
    }

    /// Starts servicing `req` on `walker` at `now`; computes the whole walk
    /// timing through the PWC, page table, and memory system.
    fn dispatch(
        &mut self,
        walker: usize,
        req: Pending,
        stolen: bool,
        now: Cycle,
        ctx: &mut WalkContext<'_>,
    ) -> DispatchedWalk {
        debug_assert!(self.walkers[walker].is_none(), "walker already busy");
        self.advance_busy(now);

        let t = req.tenant;
        let interleave = self.foreign_service[t.index()] - req.foreign_at_arrival;
        let queue_wait = now.saturating_since(req.arrival);
        self.stats.total_interleave[t.index()] += interleave;
        self.stats.total_queue_wait[t.index()] += queue_wait;
        self.note_foreign_service(walker, t);
        self.busy_count[t.index()] += 1;

        ctx.obs.trace(TraceKind::Walk, || TraceEvent::WalkAssign {
            cycle: now.0,
            tenant: t.0,
            vpn: req.vpn.0,
            walker: walker as u8,
            stolen,
            queue_wait,
            interleaved: interleave,
        });
        if stolen {
            let owner = self.owner_of(walker);
            ctx.obs.trace(TraceKind::Steal, || TraceEvent::Steal {
                cycle: now.0,
                walker: walker as u8,
                owner: owner.0,
                tenant: t.0,
                vpn: req.vpn.0,
            });
            if let Some(m) = ctx.obs.metrics() {
                m.inc("steal_success", None);
            }
        }

        let levels = ctx.page_tables[t.index()].page_size().levels();
        let mut path = std::mem::take(&mut self.path_scratch);
        ctx.page_tables[t.index()].walk_path_into(req.vpn, ctx.frames, &mut path);
        let hit = self.pwc.probe(t, req.vpn, levels);
        let first_level = hit.map_or(0, |h| h.level + 1);
        ctx.obs.trace(TraceKind::Pwc, || TraceEvent::PwcProbe {
            cycle: now.0,
            tenant: t.0,
            vpn: req.vpn.0,
            hit_levels: first_level as u8,
            levels: levels as u8,
        });

        let kind = match ctx.mask {
            Some(mask) => mask.pt_access_kind(t),
            None => AccessKind::PageTable,
        };
        let start = now + self.cfg.dispatch_overhead + self.cfg.pwc_latency;
        // The serial PTE chain resolves in one memory-system pass: each
        // level issues when the previous one returns, which `access_chain`
        // replays exactly while keeping the L2/DRAM state hot across
        // levels. The per-level traces re-derive the same issue cycles.
        self.chain_lines.clear();
        self.chain_lines
            .extend(path.entry_addrs[first_level..].iter().map(|e| e.line(128)));
        self.chain_out.clear();
        let at = ctx
            .mem
            .access_chain(&self.chain_lines, start, kind, &mut self.chain_out);
        if !ctx.obs.is_off() {
            let mut level_at = start;
            for (i, access) in self.chain_out.iter().enumerate() {
                ctx.obs.trace(TraceKind::Pte, || TraceEvent::PteFetch {
                    cycle: level_at.0,
                    tenant: t.0,
                    walker: walker as u8,
                    level: (first_level + i) as u8,
                    latency: access.latency,
                });
                level_at += access.latency;
            }
        }
        self.pwc.fill_walk(t, req.vpn, &path.node_addrs);

        if let Scheduler::Partitioned(p) = &mut self.sched {
            p.set_stolen(walker, stolen);
        }

        self.walkers[walker] = Some(InFlight {
            req,
            ppn: path.ppn,
            stolen,
            done_at: at,
        });
        self.idle_mask &= !(1 << walker);
        self.path_scratch = path;
        DispatchedWalk {
            walker: WalkerId(walker as u8),
            done_at: at,
        }
    }

    /// Accepts an L2-TLB miss at cycle `now`.
    ///
    /// Returns a [`DispatchedWalk`] when a walker starts on it (or on
    /// another pending walk freed up by the arrival) immediately; `Ok(None)`
    /// when it was queued.
    ///
    /// # Errors
    ///
    /// Returns [`WalkQueueFull`] when no queue slot is available for this
    /// tenant; the caller must retry later (back-pressure).
    pub fn try_enqueue(
        &mut self,
        req: WalkRequest,
        now: Cycle,
        ctx: &mut WalkContext<'_>,
    ) -> Result<Option<DispatchedWalk>, WalkQueueFull> {
        let pending = Pending {
            tenant: req.tenant,
            vpn: req.vpn,
            arrival: now,
            foreign_at_arrival: self.foreign_service[req.tenant.index()],
        };
        let t = req.tenant.index();

        match &mut self.sched {
            Scheduler::Shared { queue, capacity } => {
                if queue.len() >= *capacity {
                    self.stats.rejected[t] += 1;
                    ctx.obs.trace(TraceKind::Walk, || TraceEvent::WalkReject {
                        cycle: now.0,
                        tenant: req.tenant.0,
                        vpn: req.vpn.0,
                    });
                    return Err(WalkQueueFull);
                }
                queue.push_back(pending);
                self.stats.enqueued[t] += 1;
                ctx.obs.trace(TraceKind::Walk, || TraceEvent::WalkEnqueue {
                    cycle: now.0,
                    tenant: req.tenant.0,
                    vpn: req.vpn.0,
                });
                // Any idle walker takes the head of the shared queue.
                if self.idle_mask != 0 {
                    let w = self.idle_mask.trailing_zeros() as usize;
                    let head = queue.pop_front().expect("just pushed");
                    return Ok(Some(self.dispatch(w, head, false, now, ctx)));
                }
                Ok(None)
            }
            Scheduler::PerTenant {
                queues,
                per_tenant_capacity,
            } => {
                if queues[t].len() >= *per_tenant_capacity {
                    self.stats.rejected[t] += 1;
                    ctx.obs.trace(TraceKind::Walk, || TraceEvent::WalkReject {
                        cycle: now.0,
                        tenant: req.tenant.0,
                        vpn: req.vpn.0,
                    });
                    return Err(WalkQueueFull);
                }
                queues[t].push_back(pending);
                self.stats.enqueued[t] += 1;
                ctx.obs.trace(TraceKind::Walk, || TraceEvent::WalkEnqueue {
                    cycle: now.0,
                    tenant: req.tenant.0,
                    vpn: req.vpn.0,
                });
                // First idle walker in this tenant's private range.
                let per = self.cfg.n_walkers / self.cfg.n_tenants;
                let range_mask = (u128::MAX >> (128 - per)) << (t * per);
                let m = self.idle_mask & range_mask;
                if m != 0 {
                    let w = m.trailing_zeros() as usize;
                    let head = queues[t].pop_front().expect("just pushed");
                    return Ok(Some(self.dispatch(w, head, false, now, ctx)));
                }
                Ok(None)
            }
            Scheduler::Partitioned(p) => {
                // Paper step 1-2: TWM bitmap -> owned walkers; FWA -> least
                // loaded owned walker. The naive static organization lacks
                // the FWA and assigns round-robin instead.
                let chosen = if p.is_naive() {
                    p.round_robin_owned(req.tenant)
                } else {
                    p.least_loaded_owned(req.tenant)
                };
                let Some(w) = chosen else {
                    self.stats.rejected[t] += 1;
                    ctx.obs.trace(TraceKind::Walk, || TraceEvent::WalkReject {
                        cycle: now.0,
                        tenant: req.tenant.0,
                        vpn: req.vpn.0,
                    });
                    return Err(WalkQueueFull);
                };
                let rollover = p.push(w, pending);
                self.stats.enqueued[t] += 1;
                ctx.obs.trace(TraceKind::Walk, || TraceEvent::WalkEnqueue {
                    cycle: now.0,
                    tenant: req.tenant.0,
                    vpn: req.vpn.0,
                });
                if let Some(r) = rollover {
                    ctx.obs.trace(TraceKind::Epoch, || TraceEvent::EpochUpdate {
                        cycle: now.0,
                        enq_epoch: r.enq_epoch.clone(),
                        diff_thres: r.diff_thres,
                    });
                    if let Some(m) = ctx.obs.metrics() {
                        m.inc("epoch_rollovers", None);
                    }
                }

                // An idle owned walker picks the work up immediately. Under
                // the naive organization only the assigned walker may.
                let owned_idle = if p.is_naive() {
                    ((self.idle_mask >> w) & 1 == 1).then_some(w)
                } else {
                    p.first_owned_idle(req.tenant, self.idle_mask)
                };
                if let Some(wi) = owned_idle {
                    let head = p.pop_from_walker(w);
                    return Ok(Some(self.dispatch(wi, head, false, now, ctx)));
                }

                // Otherwise, an idle *foreign* walker may steal it right
                // away, under the same eligibility rules it would apply at
                // walk completion.
                if !matches!(p.steal(), StealMode::None) {
                    if let Some(wf) = p.first_foreign_idle(req.tenant, self.idle_mask) {
                        if let Some(m) = ctx.obs.metrics() {
                            m.inc("steal_attempts", None);
                        }
                        let strict = self.cfg.strict_pend_check;
                        if let Some(victim_walker) =
                            p.steal_choice(wf, strict, self.cfg.queue_entries)
                        {
                            let head = p.pop_from_walker(victim_walker);
                            return Ok(Some(self.dispatch(wf, head, true, now, ctx)));
                        }
                    }
                }
                Ok(None)
            }
        }
    }

    /// Accepts a same-cycle batch of L2-TLB misses in arrival order,
    /// writing one result per request into `out` (cleared first).
    ///
    /// Same-cycle arrivals interact — an earlier arrival can take the queue
    /// slot or idle walker a later one would have used — so the pass is
    /// strictly order-preserving and equivalent to calling
    /// [`try_enqueue`](Self::try_enqueue) once per request in order (pinned
    /// by `tests/batch_differential.rs`); batching amortizes the per-call
    /// setup and keeps one cycle's arrivals in a single cache-resident
    /// sweep.
    pub fn try_enqueue_batch(
        &mut self,
        reqs: &[WalkRequest],
        now: Cycle,
        ctx: &mut WalkContext<'_>,
        out: &mut Vec<Result<Option<DispatchedWalk>, WalkQueueFull>>,
    ) {
        out.clear();
        out.reserve(reqs.len());
        for &req in reqs {
            out.push(self.try_enqueue(req, now, ctx));
        }
    }

    /// Completes the walk on `walker` at cycle `now`.
    ///
    /// Returns the finished walk and, if the walker immediately picked up
    /// another request (its own queue, a sibling's, or a stolen one), the
    /// new dispatch to schedule.
    ///
    /// # Panics
    ///
    /// Panics if `walker` was not busy (i.e. no matching
    /// [`DispatchedWalk`] was outstanding).
    pub fn on_walker_done(
        &mut self,
        walker: WalkerId,
        now: Cycle,
        ctx: &mut WalkContext<'_>,
    ) -> (CompletedWalk, Option<DispatchedWalk>) {
        let w = walker.index();
        self.advance_busy(now);
        let inflight = self.walkers[w].take().expect("walker was not busy");
        self.idle_mask |= 1 << w;
        debug_assert_eq!(inflight.done_at, now, "walker-done event at wrong cycle");
        let t = inflight.req.tenant;
        self.busy_count[t.index()] -= 1;
        self.stats.completed[t.index()] += 1;
        if inflight.stolen {
            self.stats.stolen[t.index()] += 1;
        }
        self.stats.total_latency[t.index()] += now.saturating_since(inflight.req.arrival);

        let completed = CompletedWalk {
            tenant: t,
            vpn: inflight.req.vpn,
            ppn: inflight.ppn,
            stolen: inflight.stolen,
            latency: now.saturating_since(inflight.req.arrival),
        };
        ctx.obs.trace(TraceKind::Walk, || TraceEvent::WalkComplete {
            cycle: now.0,
            tenant: t.0,
            vpn: completed.vpn.0,
            walker: w as u8,
            stolen: completed.stolen,
            latency: completed.latency,
        });
        if let Some(m) = ctx.obs.metrics() {
            m.observe("walk_latency", Some(t.0), completed.latency);
            m.inc("walks_completed", Some(t.0));
            if completed.stolen {
                m.inc("walks_stolen", Some(t.0));
            }
        }

        // Per-policy: pick the next request for this walker.
        let pool_owner = self.owner_of(w);
        let next = match &mut self.sched {
            Scheduler::Shared { queue, .. } => queue.pop_front().map(|r| (r, false)),
            Scheduler::PerTenant { queues, .. } => {
                queues[pool_owner.index()].pop_front().map(|r| (r, false))
            }
            Scheduler::Partitioned(p) => {
                // TWM PEND_WALKS decrements when a walk finishes (paper).
                p.dec_pend(t.index());
                // Paper steps 1-3 resolved in a single scheduler pass over
                // the FWA/TWM state; see `PartScheduler::next_service`.
                let (next, attempted_steal) =
                    p.next_service(w, self.cfg.strict_pend_check, self.cfg.queue_entries);
                if attempted_steal {
                    if let Some(m) = ctx.obs.metrics() {
                        m.inc("steal_attempts", None);
                    }
                }
                next.map(|(from, stolen)| (p.pop_from_walker(from), stolen))
            }
        };

        let dispatched = next.map(|(req, stolen)| self.dispatch(w, req, stolen, now, ctx));
        (completed, dispatched)
    }

    /// Accumulated per-tenant statistics.
    #[must_use]
    pub fn stats(&self) -> &WalkStats {
        &self.stats
    }

    /// Number of walks currently queued (not in service).
    #[must_use]
    pub fn queued_len(&self) -> usize {
        match &self.sched {
            Scheduler::Shared { queue, .. } => queue.len(),
            Scheduler::PerTenant { queues, .. } => queues.iter().map(VecDeque::len).sum(),
            Scheduler::Partitioned(p) => p.total_queued(),
        }
    }

    /// Number of walkers currently servicing a walk.
    #[must_use]
    pub fn busy_walkers(&self) -> usize {
        self.cfg.n_walkers - self.idle_mask.count_ones() as usize
    }

    /// Walkers currently busy on behalf of each tenant, indexed by tenant.
    #[must_use]
    pub fn busy_per_tenant(&self) -> &[usize] {
        &self.busy_count
    }

    /// Time-averaged fraction of all walkers busy servicing `tenant` over
    /// `[0, now]` (the paper's *PW share*, Fig. 9).
    #[must_use]
    pub fn walker_share_of(&self, tenant: TenantId, now: Cycle) -> f64 {
        let mut integral = self.busy_integral[tenant.index()];
        let dt = now.saturating_since(self.last_busy_update) as f64;
        integral += self.busy_count[tenant.index()] as f64 * dt;
        let denom = now.0 as f64 * self.cfg.n_walkers as f64;
        if denom == 0.0 {
            0.0
        } else {
            integral / denom
        }
    }

    /// The page-walk cache, for inspection.
    #[must_use]
    pub fn pwc(&self) -> &PwCache {
        &self.pwc
    }

    /// The subsystem configuration.
    #[must_use]
    pub fn config(&self) -> &WalkConfig {
        &self.cfg
    }

    /// Re-splits walker ownership among the tenants flagged `active`
    /// (paper SecVI.C: a tenant arrived or departed). Pending and in-flight
    /// walks are serviced undisturbed; new arrivals observe the updated TWM
    /// and completions the updated WTM, so the partition converges within
    /// one queue drain.
    ///
    /// No-op under the shared-queue and private-pool organizations, which
    /// have no ownership tables.
    ///
    /// # Panics
    ///
    /// Panics if `active` has no `true` entry, marks more tenants than
    /// there are walkers, or its length differs from the configured tenant
    /// count.
    pub fn set_active_tenants(&mut self, active: &[bool]) {
        assert_eq!(
            active.len(),
            self.cfg.n_tenants,
            "active flags must cover all tenants"
        );
        if let Scheduler::Partitioned(p) = &mut self.sched {
            p.repartition(active);
        }
    }

    /// Removes every *queued* (not yet in-service) walk of `tenant` from
    /// the walk queues — the TLB-shootdown side of a tenant departure.
    /// In-service walks complete normally; the FWA free counts and
    /// `PEND_WALKS` are restored per removal, and the removals are counted
    /// in [`WalkStats::cancelled`] so conservation stays checkable
    /// (`enqueued == completed + cancelled + pending`). Returns how many
    /// walks were removed.
    pub fn cancel_tenant(&mut self, tenant: TenantId) -> u64 {
        let removed = match &mut self.sched {
            Scheduler::Shared { queue, .. } => {
                let before = queue.len();
                queue.retain(|p| p.tenant != tenant);
                (before - queue.len()) as u64
            }
            Scheduler::PerTenant { queues, .. } => {
                let q = &mut queues[tenant.index()];
                let n = q.len() as u64;
                q.clear();
                n
            }
            Scheduler::Partitioned(p) => p.cancel_tenant(tenant),
        };
        self.stats.cancelled[tenant.index()] += removed;
        removed
    }

    /// The owner of each walker (WTM view), for inspection; `None` under
    /// non-partitioned organizations.
    #[must_use]
    pub fn walker_owners(&self) -> Option<Vec<TenantId>> {
        match &self.sched {
            Scheduler::Partitioned(p) => Some(p.owners_snapshot()),
            _ => None,
        }
    }

    /// The TWM `PEND_WALKS` counter of each tenant (walks queued plus in
    /// service), for inspection; `None` under non-partitioned
    /// organizations.
    #[must_use]
    pub fn pend_walks(&self) -> Option<Vec<u32>> {
        match &self.sched {
            Scheduler::Partitioned(p) => {
                Some((0..self.cfg.n_tenants).map(|t| p.pend(t)).collect())
            }
            _ => None,
        }
    }

    /// The queue occupancy of each walker, for inspection; `None` under
    /// non-partitioned organizations.
    #[must_use]
    pub fn walker_queue_depths(&self) -> Option<Vec<usize>> {
        match &self.sched {
            Scheduler::Partitioned(p) => {
                Some((0..self.cfg.n_walkers).map(|w| p.queue_len(w)).collect())
            }
            _ => None,
        }
    }

    /// The FWA `is_stolen` bit of each walker (whether its current walk was
    /// stolen), for inspection; `None` under non-partitioned organizations.
    #[must_use]
    pub fn walker_stolen_bits(&self) -> Option<Vec<bool>> {
        match &self.sched {
            Scheduler::Partitioned(p) => {
                Some((0..self.cfg.n_walkers).map(|w| p.is_stolen(w)).collect())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageSize;
    use walksteal_mem::MemSystemConfig;

    const T0: TenantId = TenantId(0);
    const T1: TenantId = TenantId(1);

    struct Rig {
        pts: Vec<PageTable>,
        frames: FrameAlloc,
        mem: MemSystem,
        obs: Observer,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                pts: vec![
                    PageTable::new(T0, PageSize::Small4K),
                    PageTable::new(T1, PageSize::Small4K),
                ],
                frames: FrameAlloc::new(),
                mem: MemSystem::new(MemSystemConfig::default()),
                obs: Observer::off(),
            }
        }

        fn ctx(&mut self) -> WalkContext<'_> {
            WalkContext {
                page_tables: &mut self.pts,
                frames: &mut self.frames,
                mem: &mut self.mem,
                mask: None,
                obs: &mut self.obs,
            }
        }
    }

    fn cfg(policy: WalkPolicyKind) -> WalkConfig {
        WalkConfig {
            n_walkers: 4,
            queue_entries: 8,
            n_tenants: 2,
            policy,
            pwc_entries: 16,
            pwc_latency: 2,
            dispatch_overhead: 2,
            strict_pend_check: false,
        }
    }

    /// Drives the subsystem until all scheduled walks complete, returning
    /// completions in completion order.
    fn drain(
        ws: &mut WalkSubsystem,
        rig: &mut Rig,
        mut scheduled: Vec<DispatchedWalk>,
    ) -> Vec<CompletedWalk> {
        let mut out = Vec::new();
        while !scheduled.is_empty() {
            scheduled.sort_by_key(|d| d.done_at);
            let d = scheduled.remove(0);
            let (done, next) = ws.on_walker_done(d.walker, d.done_at, &mut rig.ctx());
            out.push(done);
            if let Some(n) = next {
                scheduled.push(n);
            }
        }
        out
    }

    #[test]
    fn baseline_walk_completes_with_translation() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::SharedQueue));
        let mut rig = Rig::new();
        let d = ws
            .try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(5),
                },
                Cycle(0),
                &mut rig.ctx(),
            )
            .unwrap()
            .expect("idle walker dispatches immediately");
        assert!(d.done_at > Cycle(0));
        let done = drain(&mut ws, &mut rig, vec![d]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tenant, T0);
        assert_eq!(done[0].vpn, Vpn(5));
        assert_eq!(rig.pts[0].translate(Vpn(5)), Some(done[0].ppn));
        assert!(!done[0].stolen);
    }

    #[test]
    fn walk_takes_hundreds_of_cycles_cold() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::SharedQueue));
        let mut rig = Rig::new();
        let d = ws
            .try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(5),
                },
                Cycle(0),
                &mut rig.ctx(),
            )
            .unwrap()
            .unwrap();
        // Four cold page-table accesses, each >= an L2 miss.
        assert!(d.done_at.0 >= 4 * 130, "walk too fast: {:?}", d.done_at);
    }

    #[test]
    fn pwc_accelerates_sibling_walks() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::SharedQueue));
        let mut rig = Rig::new();
        let d1 = ws
            .try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(0x100),
                },
                Cycle(0),
                &mut rig.ctx(),
            )
            .unwrap()
            .unwrap();
        let lat1 = d1.done_at.0;
        drain(&mut ws, &mut rig, vec![d1]);
        // Sibling page: upper levels hit the PWC and the leaf line is in L2.
        let d2 = ws
            .try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(0x101),
                },
                Cycle(10_000),
                &mut rig.ctx(),
            )
            .unwrap()
            .unwrap();
        let lat2 = d2.done_at.0 - 10_000;
        assert!(lat2 < lat1 / 2, "PWC hit walk {lat2} vs cold {lat1}");
    }

    #[test]
    fn shared_queue_is_fcfs_across_tenants() {
        let mut ws = WalkSubsystem::new(WalkConfig {
            n_walkers: 1,
            queue_entries: 8,
            ..cfg(WalkPolicyKind::SharedQueue)
        });
        let mut rig = Rig::new();
        let d = ws
            .try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(1),
                },
                Cycle(0),
                &mut rig.ctx(),
            )
            .unwrap()
            .unwrap();
        for i in 0..3 {
            assert!(ws
                .try_enqueue(
                    WalkRequest {
                        tenant: TenantId(i % 2),
                        vpn: Vpn(100 + u64::from(i))
                    },
                    Cycle(1),
                    &mut rig.ctx(),
                )
                .unwrap()
                .is_none());
        }
        let done = drain(&mut ws, &mut rig, vec![d]);
        let vpns: Vec<u64> = done.iter().map(|c| c.vpn.0).collect();
        assert_eq!(vpns, vec![1, 100, 101, 102]);
    }

    #[test]
    fn shared_queue_full_rejects() {
        let mut ws = WalkSubsystem::new(WalkConfig {
            n_walkers: 1,
            queue_entries: 2,
            ..cfg(WalkPolicyKind::SharedQueue)
        });
        let mut rig = Rig::new();
        // One in service + two queued = full.
        ws.try_enqueue(
            WalkRequest {
                tenant: T0,
                vpn: Vpn(1),
            },
            Cycle(0),
            &mut rig.ctx(),
        )
        .unwrap();
        ws.try_enqueue(
            WalkRequest {
                tenant: T0,
                vpn: Vpn(2),
            },
            Cycle(0),
            &mut rig.ctx(),
        )
        .unwrap();
        ws.try_enqueue(
            WalkRequest {
                tenant: T0,
                vpn: Vpn(3),
            },
            Cycle(0),
            &mut rig.ctx(),
        )
        .unwrap();
        let r = ws.try_enqueue(
            WalkRequest {
                tenant: T0,
                vpn: Vpn(4),
            },
            Cycle(0),
            &mut rig.ctx(),
        );
        assert_eq!(r, Err(WalkQueueFull));
        assert_eq!(ws.stats().rejected[0], 1);
    }

    #[test]
    fn static_partition_never_steals() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::Partitioned(StealMode::None)));
        let mut rig = Rig::new();
        // Load tenant 0 with more walks than its 2 walkers can hold; tenant 1
        // idle. Under static partitioning t1's walkers must stay idle.
        let mut sched = Vec::new();
        for i in 0..6 {
            if let Ok(Some(d)) = ws.try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(i * 0x1000),
                },
                Cycle(0),
                &mut rig.ctx(),
            ) {
                sched.push(d);
            }
        }
        assert_eq!(ws.busy_walkers(), 2, "only tenant 0's walkers run");
        let done = drain(&mut ws, &mut rig, sched);
        assert_eq!(done.len(), 6);
        assert!(done.iter().all(|c| !c.stolen));
    }

    #[test]
    fn dws_steals_when_owner_idle() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::Partitioned(StealMode::Dws)));
        let mut rig = Rig::new();
        let mut sched = Vec::new();
        for i in 0..6 {
            if let Ok(Some(d)) = ws.try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(i * 0x1000),
                },
                Cycle(0),
                &mut rig.ctx(),
            ) {
                sched.push(d);
            }
        }
        // Tenant 1's walkers are idle and steal immediately.
        assert_eq!(ws.busy_walkers(), 4, "foreign walkers steal");
        let done = drain(&mut ws, &mut rig, sched);
        assert_eq!(done.len(), 6);
        assert!(done.iter().any(|c| c.stolen), "some walks were stolen");
        assert!(ws.stats().stolen[0] > 0);
    }

    #[test]
    fn dws_does_not_steal_when_owner_has_queued_work() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::Partitioned(StealMode::Dws)));
        let mut rig = Rig::new();
        let mut sched = Vec::new();
        // Both tenants flooded: every walker busy with its own tenant, and
        // both have queued work, so no steals should ever occur.
        for i in 0..4 {
            for t in [T0, T1] {
                if let Ok(Some(d)) = ws.try_enqueue(
                    WalkRequest {
                        tenant: t,
                        vpn: Vpn(0x10_0000 * u64::from(t.0) + i * 0x1000),
                    },
                    Cycle(0),
                    &mut rig.ctx(),
                ) {
                    sched.push(d);
                }
            }
        }
        let done = drain(&mut ws, &mut rig, sched);
        assert_eq!(done.len(), 8);
        assert!(
            done.iter().all(|c| !c.stolen),
            "no steal under symmetric load"
        );
    }

    #[test]
    fn dws_interleaving_is_bounded() {
        // A tenant-0 walk never waits for more than one tenant-1 walk under
        // DWS: tenant 0's walks only ever queue at tenant 0's walkers, and a
        // stolen (foreign) walk occupies a walker for at most one service.
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::Partitioned(StealMode::Dws)));
        let mut rig = Rig::new();
        let mut sched = Vec::new();
        // Heavy tenant 1 floods; light tenant 0 trickles.
        for i in 0..8 {
            if let Ok(Some(d)) = ws.try_enqueue(
                WalkRequest {
                    tenant: T1,
                    vpn: Vpn(0x100_0000 + i * 0x1000),
                },
                Cycle(0),
                &mut rig.ctx(),
            ) {
                sched.push(d);
            }
        }
        for i in 0..4 {
            if let Ok(Some(d)) = ws.try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(i * 0x1000),
                },
                Cycle(10 + i),
                &mut rig.ctx(),
            ) {
                sched.push(d);
            }
        }
        drain(&mut ws, &mut rig, sched);
        // Mean interleaving for the light tenant stays at most ~1.
        assert!(
            ws.stats().mean_interleave(T0) <= 1.0 + 1e-9,
            "interleave {}",
            ws.stats().mean_interleave(T0)
        );
    }

    #[test]
    fn private_pools_isolate_tenants() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::PrivatePools));
        let mut rig = Rig::new();
        let mut sched = Vec::new();
        for i in 0..4 {
            if let Ok(Some(d)) = ws.try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(i * 0x1000),
                },
                Cycle(0),
                &mut rig.ctx(),
            ) {
                sched.push(d);
            }
        }
        assert_eq!(ws.busy_walkers(), 2, "tenant 0 only uses its own pool");
        let done = drain(&mut ws, &mut rig, sched);
        assert!(done.iter().all(|c| !c.stolen));
    }

    #[test]
    fn partitioned_enqueue_full_when_owned_queues_full() {
        let mut ws = WalkSubsystem::new(WalkConfig {
            n_walkers: 2,
            queue_entries: 4, // 2 per walker
            ..cfg(WalkPolicyKind::Partitioned(StealMode::Dws))
        });
        let mut rig = Rig::new();
        // Tenant 0 owns walker 0 only: 1 in service + 2 queued = full.
        // (With DWS, walker 1 steals one, freeing a slot; so fill more.)
        let mut accepted = 0;
        for i in 0..10 {
            if ws
                .try_enqueue(
                    WalkRequest {
                        tenant: T0,
                        vpn: Vpn(i * 0x1000),
                    },
                    Cycle(0),
                    &mut rig.ctx(),
                )
                .is_ok()
            {
                accepted += 1;
            }
        }
        // 2 in service (own + stolen) + 2 queued in own + 2 queued in the
        // foreign walker's queue? No: queued walks always sit in the OWNER's
        // walker queue. So capacity = 2 in service + 2 queued = 4.
        assert_eq!(accepted, 4);
        assert!(ws.stats().rejected[0] > 0);
    }

    #[test]
    fn dwspp_steals_under_imbalance_even_with_owner_work() {
        let params = DwsPlusPlusParams {
            epoch_length: 4,
            thresholds: vec![(f64::INFINITY, 0.05)],
            queue_thres: 0.99,
        };
        let mut ws = WalkSubsystem::new(WalkConfig {
            n_walkers: 2,
            queue_entries: 16, // 8 per walker
            ..cfg(WalkPolicyKind::Partitioned(StealMode::DwsPlusPlus(params)))
        });
        let mut rig = Rig::new();
        let mut sched = Vec::new();
        // Tenant 1: one walk in service, one queued (owner has work).
        for i in 0..2 {
            if let Ok(Some(d)) = ws.try_enqueue(
                WalkRequest {
                    tenant: T1,
                    vpn: Vpn(0x100_0000 + i * 0x1000),
                },
                Cycle(0),
                &mut rig.ctx(),
            ) {
                sched.push(d);
            }
        }
        // Tenant 0: flood its single walker far beyond tenant 1's load.
        for i in 0..8 {
            if let Ok(Some(d)) = ws.try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(i * 0x1000),
                },
                Cycle(1),
                &mut rig.ctx(),
            ) {
                sched.push(d);
            }
        }
        let done = drain(&mut ws, &mut rig, sched);
        // Tenant 1's walker should at some point steal tenant-0 work even
        // though tenant 1 still has queued walks.
        assert!(
            done.iter().any(|c| c.stolen && c.tenant == T0),
            "DWS++ imbalance steal did not trigger"
        );
    }

    #[test]
    fn dwspp_ratio_table_lookup() {
        let p = DwsPlusPlusParams::paper_default();
        assert_eq!(p.diff_thres_for(1.0), Some(0.4));
        assert_eq!(p.diff_thres_for(1.5), Some(0.4));
        assert_eq!(p.diff_thres_for(1.8), Some(0.6));
        assert_eq!(p.diff_thres_for(2.5), Some(0.8));
        assert_eq!(p.diff_thres_for(3.5), Some(0.9));
        assert_eq!(p.diff_thres_for(10.0), None);
    }

    #[test]
    fn dwspp_no_consecutive_steal_with_owner_work() {
        // After a steal, a walker with owner work pending must serve its
        // owner next (is_stolen bit).
        let params = DwsPlusPlusParams {
            epoch_length: 1000,
            thresholds: vec![(f64::INFINITY, 0.0)],
            queue_thres: 1.0,
        };
        let mut ws = WalkSubsystem::new(WalkConfig {
            n_walkers: 2,
            queue_entries: 16,
            ..cfg(WalkPolicyKind::Partitioned(StealMode::DwsPlusPlus(params)))
        });
        let mut rig = Rig::new();
        let mut sched = Vec::new();
        for i in 0..6 {
            if let Ok(Some(d)) = ws.try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(i * 0x1000),
                },
                Cycle(0),
                &mut rig.ctx(),
            ) {
                sched.push(d);
            }
        }
        for i in 0..4 {
            if let Ok(Some(d)) = ws.try_enqueue(
                WalkRequest {
                    tenant: T1,
                    vpn: Vpn(0x100_0000 + i * 0x1000),
                },
                Cycle(0),
                &mut rig.ctx(),
            ) {
                sched.push(d);
            }
        }
        // Track per-walker service order: no two consecutive stolen walks on
        // the same walker while its owner had queued work.
        let mut last_stolen = [false; 2];
        let mut scheduled = sched;
        while !scheduled.is_empty() {
            scheduled.sort_by_key(|d| d.done_at);
            let d = scheduled.remove(0);
            let w = d.walker.index();
            let (done, next) = ws.on_walker_done(d.walker, d.done_at, &mut rig.ctx());
            if done.stolen && last_stolen[w] {
                // Both consecutive services on this walker were steals; only
                // legal if the owner had nothing queued in between, which we
                // can't observe here — so assert the weaker invariant below
                // via stats instead.
            }
            last_stolen[w] = done.stolen;
            if let Some(n) = next {
                scheduled.push(n);
            }
        }
        // The strong invariant: every enqueued walk completed.
        let s = ws.stats();
        assert_eq!(
            s.enqueued[0] + s.enqueued[1],
            s.completed[0] + s.completed[1]
        );
    }

    #[test]
    fn conservation_of_walks() {
        for policy in [
            WalkPolicyKind::SharedQueue,
            WalkPolicyKind::PrivatePools,
            WalkPolicyKind::Partitioned(StealMode::None),
            WalkPolicyKind::Partitioned(StealMode::Dws),
            WalkPolicyKind::Partitioned(StealMode::DwsPlusPlus(DwsPlusPlusParams::paper_default())),
        ] {
            let mut ws = WalkSubsystem::new(cfg(policy.clone()));
            let mut rig = Rig::new();
            let mut sched = Vec::new();
            let mut accepted = 0;
            for i in 0..20 {
                let t = TenantId((i % 3 == 0) as u8);
                match ws.try_enqueue(
                    WalkRequest {
                        tenant: t,
                        vpn: Vpn(u64::from(t.0) * 0x100_0000 + i * 0x1000),
                    },
                    Cycle(i * 3),
                    &mut rig.ctx(),
                ) {
                    Ok(Some(d)) => {
                        accepted += 1;
                        sched.push(d);
                    }
                    Ok(None) => accepted += 1,
                    Err(WalkQueueFull) => {}
                }
            }
            let done = drain(&mut ws, &mut rig, sched);
            assert_eq!(done.len(), accepted, "policy {policy:?} lost walks");
            assert_eq!(ws.queued_len(), 0);
            assert_eq!(ws.busy_walkers(), 0);
        }
    }

    #[test]
    fn walker_share_integrates() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::SharedQueue));
        let mut rig = Rig::new();
        let d = ws
            .try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(1),
                },
                Cycle(0),
                &mut rig.ctx(),
            )
            .unwrap()
            .unwrap();
        let total = d.done_at;
        ws.on_walker_done(d.walker, d.done_at, &mut rig.ctx());
        // One of four walkers busy for the whole interval => share 0.25.
        let share = ws.walker_share_of(T0, total);
        assert!((share - 0.25).abs() < 1e-9, "share {share}");
        assert_eq!(ws.walker_share_of(T1, total), 0.0);
    }

    #[test]
    #[should_panic(expected = "walker was not busy")]
    fn done_on_idle_walker_panics() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::SharedQueue));
        let mut rig = Rig::new();
        ws.on_walker_done(WalkerId(0), Cycle(10), &mut rig.ctx());
    }

    #[test]
    fn queue_full_error_display() {
        assert_eq!(WalkQueueFull.to_string(), "page-walk queue is full");
    }

    #[test]
    fn departure_gives_walkers_to_remaining_tenant() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::Partitioned(StealMode::Dws)));
        let owners = ws.walker_owners().unwrap();
        assert_eq!(owners, vec![T0, T0, T1, T1]);
        // Tenant 1 departs: tenant 0 owns everything.
        ws.set_active_tenants(&[true, false]);
        let owners = ws.walker_owners().unwrap();
        assert_eq!(owners, vec![T0, T0, T0, T0]);
    }

    #[test]
    fn arrival_resplits_walkers() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::Partitioned(StealMode::Dws)));
        ws.set_active_tenants(&[true, false]);
        ws.set_active_tenants(&[true, true]);
        assert_eq!(ws.walker_owners().unwrap(), vec![T0, T0, T1, T1]);
    }

    #[test]
    fn in_flight_walks_survive_repartition() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::Partitioned(StealMode::Dws)));
        let mut rig = Rig::new();
        let mut sched = Vec::new();
        for i in 0..6u64 {
            let t = TenantId((i % 2) as u8);
            if let Ok(Some(d)) = ws.try_enqueue(
                WalkRequest {
                    tenant: t,
                    vpn: Vpn(u64::from(t.0) * 0x100_0000 + i * 0x1000),
                },
                Cycle(0),
                &mut rig.ctx(),
            ) {
                sched.push(d);
            }
        }
        // Tenant 1 departs mid-flight.
        ws.set_active_tenants(&[true, false]);
        let done = drain(&mut ws, &mut rig, sched);
        assert_eq!(done.len(), 6, "repartition lost walks");
        // After convergence: new tenant-0 arrivals use all four walkers.
        let mut sched2 = Vec::new();
        for i in 0..4u64 {
            if let Ok(Some(d)) = ws.try_enqueue(
                WalkRequest {
                    tenant: T0,
                    vpn: Vpn(0x20_0000 + i * 0x1000),
                },
                Cycle(100_000),
                &mut rig.ctx(),
            ) {
                sched2.push(d);
            }
        }
        assert_eq!(ws.busy_walkers(), 4, "departed tenant's walkers unused");
        drain(&mut ws, &mut rig, sched2);
    }

    #[test]
    fn cancel_tenant_removes_queued_walks_only() {
        for imp in [SchedulerImpl::Optimized, SchedulerImpl::Reference] {
            let mut ws = WalkSubsystem::with_scheduler_impl(
                cfg(WalkPolicyKind::Partitioned(StealMode::None)),
                imp,
            );
            let mut rig = Rig::new();
            let mut sched = Vec::new();
            // Both tenants: fill service + queues under static partitioning
            // (no steals, so tenant 1's walks stay in its own queues).
            for i in 0..4u64 {
                for t in [T0, T1] {
                    if let Ok(Some(d)) = ws.try_enqueue(
                        WalkRequest {
                            tenant: t,
                            vpn: Vpn(u64::from(t.0) * 0x100_0000 + i * 0x1000),
                        },
                        Cycle(0),
                        &mut rig.ctx(),
                    ) {
                        sched.push(d);
                    }
                }
            }
            let queued_before = ws.queued_len();
            let t1_queued = ws.stats().enqueued[1] - ws.busy_per_tenant()[1] as u64;
            let removed = ws.cancel_tenant(T1);
            assert_eq!(removed, t1_queued, "impl {imp:?}");
            assert_eq!(ws.stats().cancelled[1], removed);
            assert_eq!(ws.queued_len() as u64, queued_before as u64 - removed);
            // In-service walks of the departed tenant still complete.
            let done = drain(&mut ws, &mut rig, sched);
            assert!(done.iter().any(|c| c.tenant == T1), "in-flight survived");
            let s = ws.stats();
            for t in 0..2 {
                assert_eq!(s.enqueued[t], s.completed[t] + s.cancelled[t]);
            }
            assert_eq!(ws.queued_len(), 0);
        }
    }

    #[test]
    fn cancel_preserves_fifo_of_survivors() {
        // Interleave two tenants on one walker's queue, cancel one, and
        // check the survivors drain in their original relative order.
        for imp in [SchedulerImpl::Optimized, SchedulerImpl::Reference] {
            let mut ws = WalkSubsystem::with_scheduler_impl(
                WalkConfig {
                    n_walkers: 1,
                    queue_entries: 8,
                    n_tenants: 1,
                    ..cfg(WalkPolicyKind::Partitioned(StealMode::None))
                },
                imp,
            );
            let mut rig = Rig::new();
            let mut sched = Vec::new();
            for i in 0..6u64 {
                if let Ok(Some(d)) = ws.try_enqueue(
                    WalkRequest {
                        tenant: T0,
                        vpn: Vpn(i * 0x1000),
                    },
                    Cycle(0),
                    &mut rig.ctx(),
                ) {
                    sched.push(d);
                }
            }
            // One in service, five queued; cancelling a tenant with nothing
            // queued is a no-op...
            assert_eq!(ws.cancel_tenant(TenantId(0)) + 1, 6);
            // ...queue emptied, the in-service walk still completes.
            assert_eq!(ws.queued_len(), 0);
            let done = drain(&mut ws, &mut rig, sched);
            assert_eq!(done.len(), 1);
        }
    }

    #[test]
    fn cancel_then_refill_reuses_freed_slots() {
        // The bitmap arena must recycle cancelled slots: cancel a full
        // queue, then refill it completely without running out of arena.
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::Partitioned(StealMode::None)));
        let mut rig = Rig::new();
        let mut sched = Vec::new();
        for round in 0..3u64 {
            for i in 0..8u64 {
                if let Ok(Some(d)) = ws.try_enqueue(
                    WalkRequest {
                        tenant: T0,
                        vpn: Vpn(round * 0x10_0000 + i * 0x1000),
                    },
                    Cycle(round * 10),
                    &mut rig.ctx(),
                ) {
                    sched.push(d);
                }
            }
            ws.cancel_tenant(T0);
        }
        assert_eq!(ws.queued_len(), 0);
        drain(&mut ws, &mut rig, sched);
        let s = ws.stats();
        assert_eq!(s.enqueued[0], s.completed[0] + s.cancelled[0]);
    }

    #[test]
    fn cancel_tenant_shared_and_private_queues() {
        for policy in [WalkPolicyKind::SharedQueue, WalkPolicyKind::PrivatePools] {
            let mut ws = WalkSubsystem::new(cfg(policy));
            let mut rig = Rig::new();
            let mut sched = Vec::new();
            for i in 0..6u64 {
                for t in [T0, T1] {
                    if let Ok(Some(d)) = ws.try_enqueue(
                        WalkRequest {
                            tenant: t,
                            vpn: Vpn(u64::from(t.0) * 0x100_0000 + i * 0x1000),
                        },
                        Cycle(0),
                        &mut rig.ctx(),
                    ) {
                        sched.push(d);
                    }
                }
            }
            let removed = ws.cancel_tenant(T1);
            assert_eq!(ws.stats().cancelled[1], removed);
            let done = drain(&mut ws, &mut rig, sched);
            assert!(!done.is_empty());
            let s = ws.stats();
            let total_enq: u64 = s.enqueued.iter().sum();
            let total_done: u64 = s.completed.iter().sum();
            let total_cancelled: u64 = s.cancelled.iter().sum();
            assert_eq!(total_enq, total_done + total_cancelled);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn repartition_to_nobody_panics() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::Partitioned(StealMode::Dws)));
        ws.set_active_tenants(&[false, false]);
    }

    #[test]
    fn shared_queue_repartition_is_noop() {
        let mut ws = WalkSubsystem::new(cfg(WalkPolicyKind::SharedQueue));
        assert!(ws.walker_owners().is_none());
        ws.set_active_tenants(&[true, false]); // must not panic
    }
}
