//! The 13 modeled applications and their behavioral profiles.

use std::fmt;

/// The application's L2-TLB miss intensity class (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MpmiClass {
    /// MPMI < 25: barely exercises the virtual-memory system.
    Light,
    /// 25 < MPMI < 80.
    Medium,
    /// MPMI > 80: walk-intensive.
    Heavy,
}

impl fmt::Display for MpmiClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpmiClass::Light => write!(f, "L"),
            MpmiClass::Medium => write!(f, "M"),
            MpmiClass::Heavy => write!(f, "H"),
        }
    }
}

/// How a warp selects pages within its hot region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HotPattern {
    /// Sequential lines, page by page (streaming kernels).
    Sequential,
    /// Fixed page stride between consecutive accesses (FFT/3DS-style).
    Strided(u64),
    /// Uniformly random page in the hot region (lookup tables).
    Random,
}

/// One modeled application (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppId {
    /// Matrix multiplication (Parboil) — Light.
    Mm,
    /// Hotspot: chip temperature map (Rodinia) — Light.
    Hs,
    /// Ray tracing — Light.
    Ray,
    /// Fast Fourier transform (Parboil) — Light.
    Fft,
    /// 3D Laplace solver (MAFIA) — Medium.
    Lps,
    /// JPEG encode/decode (MAFIA) — Medium.
    Jpeg,
    /// LIBOR swaption portfolio (MAFIA) — Medium.
    Lib,
    /// Speckle-reducing anisotropic diffusion (Rodinia) — Medium.
    Srad,
    /// 3DS: patterned array updates (MAFIA) — Medium.
    Tds,
    /// BlackScholes market-equation solver (MAFIA) — Heavy in practice:
    /// good cache locality, but co-scheduled warps with disjoint working
    /// sets thrash the TLB (paper §III).
    Blk,
    /// Quality-threshold clustering (SHOC) — Heavy.
    Qtc,
    /// Sum of absolute differences (Parboil) — Heavy.
    Sad,
    /// GUPS: multi-threaded random access — Heavy.
    Gups,
}

impl AppId {
    /// All 13 applications, in the paper's Table II order.
    pub const ALL: [AppId; 13] = [
        AppId::Mm,
        AppId::Hs,
        AppId::Ray,
        AppId::Fft,
        AppId::Lps,
        AppId::Jpeg,
        AppId::Lib,
        AppId::Srad,
        AppId::Tds,
        AppId::Blk,
        AppId::Qtc,
        AppId::Sad,
        AppId::Gups,
    ];

    /// The short name the paper uses.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AppId::Mm => "MM",
            AppId::Hs => "HS",
            AppId::Ray => "RAY",
            AppId::Fft => "FFT",
            AppId::Lps => "LPS",
            AppId::Jpeg => "JPEG",
            AppId::Lib => "LIB",
            AppId::Srad => "SRAD",
            AppId::Tds => "3DS",
            AppId::Blk => "BLK",
            AppId::Qtc => "QTC",
            AppId::Sad => "SAD",
            AppId::Gups => "GUPS",
        }
    }

    /// Parses a paper-style short name ("GUPS", "3DS", …), case-insensitive.
    /// Inverse of [`name`](Self::name); used by the CLI and the JSON cache.
    #[must_use]
    pub fn from_name(name: &str) -> Option<AppId> {
        AppId::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }

    /// The MPMI class this app is calibrated to.
    #[must_use]
    pub fn class(self) -> MpmiClass {
        match self {
            AppId::Mm | AppId::Hs | AppId::Ray | AppId::Fft => MpmiClass::Light,
            AppId::Lps | AppId::Jpeg | AppId::Lib | AppId::Srad | AppId::Tds => MpmiClass::Medium,
            AppId::Blk | AppId::Qtc | AppId::Sad | AppId::Gups => MpmiClass::Heavy,
        }
    }

    /// The behavioral profile driving this app's [`crate::WarpStream`]s.
    #[must_use]
    pub fn profile(self) -> AppProfile {
        // Knob guide (see crate docs): standalone thread-level MPMI is
        // approximately cold_prob * divergence / (mean_compute + 1) / 32 * 1e6
        // when the aggregate cold region dwarfs the 1024-entry L2 TLB.
        match self {
            AppId::Mm => AppProfile {
                id: self,
                mean_compute: 24.0,
                divergence: 1,
                hot_pages: 2,
                cold_pages: 8,
                cold_prob: 0.003,
                warm_pages: 320,
                warm_prob: 0.35,
                storm_every_ops: 800,
                storm_ops: 80,
                storm_cold_prob: 0.012,
                hot_pattern: HotPattern::Sequential,
                length_scale: 1.0,
            },
            AppId::Hs => AppProfile {
                id: self,
                mean_compute: 20.0,
                divergence: 1,
                hot_pages: 2,
                cold_pages: 6,
                cold_prob: 0.006,
                warm_pages: 256,
                warm_prob: 0.35,
                storm_every_ops: 800,
                storm_ops: 80,
                storm_cold_prob: 0.024,
                hot_pattern: HotPattern::Sequential,
                length_scale: 0.9,
            },
            AppId::Ray => AppProfile {
                id: self,
                mean_compute: 28.0,
                divergence: 1,
                hot_pages: 2,
                cold_pages: 16,
                cold_prob: 0.009,
                warm_pages: 320,
                warm_prob: 0.3,
                storm_every_ops: 800,
                storm_ops: 80,
                storm_cold_prob: 0.037,
                hot_pattern: HotPattern::Random,
                length_scale: 1.2,
            },
            AppId::Fft => AppProfile {
                id: self,
                mean_compute: 20.0,
                divergence: 1,
                hot_pages: 2,
                cold_pages: 16,
                cold_prob: 0.0046,
                warm_pages: 256,
                warm_prob: 0.35,
                storm_every_ops: 800,
                storm_ops: 80,
                storm_cold_prob: 0.018,
                hot_pattern: HotPattern::Strided(3),
                length_scale: 0.8,
            },
            AppId::Lps => AppProfile {
                id: self,
                mean_compute: 16.0,
                divergence: 1,
                hot_pages: 2,
                cold_pages: 64,
                cold_prob: 0.004,
                warm_pages: 512,
                warm_prob: 0.45,
                storm_every_ops: 1200,
                storm_ops: 200,
                storm_cold_prob: 0.028,
                hot_pattern: HotPattern::Sequential,
                length_scale: 1.0,
            },
            AppId::Jpeg => AppProfile {
                id: self,
                mean_compute: 16.0,
                divergence: 1,
                hot_pages: 2,
                cold_pages: 64,
                cold_prob: 0.004,
                warm_pages: 512,
                warm_prob: 0.45,
                storm_every_ops: 1200,
                storm_ops: 200,
                storm_cold_prob: 0.036,
                hot_pattern: HotPattern::Sequential,
                length_scale: 1.1,
            },
            AppId::Lib => AppProfile {
                id: self,
                mean_compute: 18.0,
                divergence: 1,
                hot_pages: 2,
                cold_pages: 96,
                cold_prob: 0.006,
                warm_pages: 448,
                warm_prob: 0.42,
                storm_every_ops: 1200,
                storm_ops: 200,
                storm_cold_prob: 0.048,
                hot_pattern: HotPattern::Random,
                length_scale: 1.0,
            },
            AppId::Srad => AppProfile {
                id: self,
                mean_compute: 16.0,
                divergence: 1,
                hot_pages: 2,
                cold_pages: 64,
                cold_prob: 0.004,
                warm_pages: 512,
                warm_prob: 0.45,
                storm_every_ops: 1200,
                storm_ops: 200,
                storm_cold_prob: 0.03,
                hot_pattern: HotPattern::Sequential,
                length_scale: 0.9,
            },
            AppId::Tds => AppProfile {
                id: self,
                mean_compute: 16.0,
                divergence: 1,
                hot_pages: 2,
                cold_pages: 128,
                cold_prob: 0.004,
                warm_pages: 512,
                warm_prob: 0.48,
                storm_every_ops: 1200,
                storm_ops: 200,
                storm_cold_prob: 0.034,
                hot_pattern: HotPattern::Strided(5),
                length_scale: 1.0,
            },
            AppId::Blk => AppProfile {
                id: self,
                // Good cache locality (small aggregate line working set)
                // but warps' disjoint page sets thrash the TLB.
                mean_compute: 12.0,
                divergence: 1,
                hot_pages: 4,
                cold_pages: 40,
                cold_prob: 0.15,
                warm_pages: 0,
                warm_prob: 0.0,
                storm_every_ops: 600,
                storm_ops: 90,
                storm_cold_prob: 0.5,
                hot_pattern: HotPattern::Random,
                length_scale: 1.1,
            },
            AppId::Qtc => AppProfile {
                id: self,
                mean_compute: 12.0,
                divergence: 2,
                hot_pages: 2,
                cold_pages: 256,
                cold_prob: 0.15,
                warm_pages: 0,
                warm_prob: 0.0,
                storm_every_ops: 600,
                storm_ops: 90,
                storm_cold_prob: 0.45,
                hot_pattern: HotPattern::Random,
                length_scale: 1.2,
            },
            AppId::Sad => AppProfile {
                id: self,
                mean_compute: 10.0,
                divergence: 2,
                hot_pages: 2,
                cold_pages: 512,
                cold_prob: 0.25,
                warm_pages: 0,
                warm_prob: 0.0,
                storm_every_ops: 600,
                storm_ops: 90,
                storm_cold_prob: 0.65,
                hot_pattern: HotPattern::Random,
                length_scale: 0.9,
            },
            AppId::Gups => AppProfile {
                id: self,
                mean_compute: 16.0,
                divergence: 4,
                hot_pages: 1,
                cold_pages: 2048,
                cold_prob: 0.9,
                warm_pages: 0,
                warm_prob: 0.0,
                storm_every_ops: 0,
                storm_ops: 0,
                storm_cold_prob: 0.0,
                hot_pattern: HotPattern::Random,
                length_scale: 1.0,
            },
        }
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Behavioral parameters of one modeled application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Which application this is.
    pub id: AppId,
    /// Mean compute instructions between memory instructions (geometric).
    pub mean_compute: f64,
    /// Distinct pages touched per memory instruction after coalescing
    /// (1 = fully coalesced; >1 = divergent).
    pub divergence: usize,
    /// Per-warp hot region, in pages: reused heavily, collectively sized to
    /// (mostly) fit the TLBs for Light apps.
    pub hot_pages: u64,
    /// Per-warp cold region, in pages: touched with `cold_prob`, disjoint
    /// per warp, collectively far exceeding TLB reach.
    pub cold_pages: u64,
    /// Probability a page reference targets the cold region.
    pub cold_prob: f64,
    /// Tenant-shared warm region, in pages: swept sequentially with a long
    /// reuse interval. Standalone it fits the L2 TLB (low MPMI); under a
    /// walk-intensive co-tenant its entries are evicted between reuses, so
    /// the miss rate inflates — the TLB-thrash channel of §IV.
    pub warm_pages: u64,
    /// Probability a page reference targets the warm region.
    pub warm_prob: f64,
    /// Miss-storm period, in warp operations (0 disables storms). Real
    /// kernels change phase — a new tile, a new input block — and emit a
    /// burst of first-touch misses. Storms are what make walker *sharing*
    /// valuable (a storming tenant briefly wants every walker) and thus
    /// what separates DWS from naive static partitioning (Fig. 11).
    pub storm_every_ops: u64,
    /// Storm duration, in warp operations.
    pub storm_ops: u64,
    /// Cold-region probability during a storm (replaces `cold_prob`).
    pub storm_cold_prob: f64,
    /// Page-selection pattern within the hot region.
    pub hot_pattern: HotPattern,
    /// Relative execution length (multiplies the configured per-warp
    /// instruction budget), so co-tenants finish at different times and the
    /// relaunch methodology matters.
    pub length_scale: f64,
}

impl AppProfile {
    /// Total pages in one warp's working set (shared regions excluded).
    #[must_use]
    pub fn pages_per_warp(&self) -> u64 {
        self.hot_pages + self.cold_pages
    }

    /// Serializes the full profile, so synthetic (non-calibrated) tenants
    /// round-trip through fuzz repro files. The `id` only labels the
    /// tenant; behavior comes entirely from the knobs.
    #[must_use]
    pub fn to_json(&self) -> walksteal_sim_core::Json {
        use walksteal_sim_core::Json;
        let (pattern, stride) = match self.hot_pattern {
            HotPattern::Sequential => ("sequential", None),
            HotPattern::Strided(s) => ("strided", Some(s)),
            HotPattern::Random => ("random", None),
        };
        let mut obj = vec![
            ("id".into(), Json::Str(self.id.name().into())),
            ("mean_compute".into(), Json::Num(self.mean_compute)),
            ("divergence".into(), Json::UInt(self.divergence as u64)),
            ("hot_pages".into(), Json::UInt(self.hot_pages)),
            ("cold_pages".into(), Json::UInt(self.cold_pages)),
            ("cold_prob".into(), Json::Num(self.cold_prob)),
            ("warm_pages".into(), Json::UInt(self.warm_pages)),
            ("warm_prob".into(), Json::Num(self.warm_prob)),
            ("storm_every_ops".into(), Json::UInt(self.storm_every_ops)),
            ("storm_ops".into(), Json::UInt(self.storm_ops)),
            ("storm_cold_prob".into(), Json::Num(self.storm_cold_prob)),
            ("hot_pattern".into(), Json::Str(pattern.into())),
            ("length_scale".into(), Json::Num(self.length_scale)),
        ];
        if let Some(s) = stride {
            obj.push(("hot_stride".into(), Json::UInt(s)));
        }
        Json::Obj(obj)
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &walksteal_sim_core::Json) -> Result<AppProfile, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(walksteal_sim_core::Json::as_str)
                .ok_or_else(|| format!("profile: missing string field `{k}`"))
        };
        let num = |k: &str| {
            v.get(k)
                .and_then(walksteal_sim_core::Json::as_f64)
                .ok_or_else(|| format!("profile: missing numeric field `{k}`"))
        };
        let uint = |k: &str| {
            v.get(k)
                .and_then(walksteal_sim_core::Json::as_u64)
                .ok_or_else(|| format!("profile: missing integer field `{k}`"))
        };
        let id_name = str_field("id")?;
        let id = AppId::from_name(id_name).ok_or_else(|| format!("profile: unknown app id `{id_name}`"))?;
        let hot_pattern = match str_field("hot_pattern")? {
            "sequential" => HotPattern::Sequential,
            "random" => HotPattern::Random,
            "strided" => HotPattern::Strided(uint("hot_stride")?),
            other => return Err(format!("profile: unknown hot_pattern `{other}`")),
        };
        Ok(AppProfile {
            id,
            mean_compute: num("mean_compute")?,
            divergence: uint("divergence")? as usize,
            hot_pages: uint("hot_pages")?,
            cold_pages: uint("cold_pages")?,
            cold_prob: num("cold_prob")?,
            warm_pages: uint("warm_pages")?,
            warm_prob: num("warm_prob")?,
            storm_every_ops: uint("storm_every_ops")?,
            storm_ops: uint("storm_ops")?,
            storm_cold_prob: num("storm_cold_prob")?,
            hot_pattern,
            length_scale: num("length_scale")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_apps() {
        assert_eq!(AppId::ALL.len(), 13);
    }

    #[test]
    fn from_name_round_trips() {
        for app in AppId::ALL {
            assert_eq!(AppId::from_name(app.name()), Some(app));
            assert_eq!(AppId::from_name(&app.name().to_lowercase()), Some(app));
        }
        assert_eq!(AppId::from_name("nope"), None);
    }

    #[test]
    fn classes_match_paper_table() {
        use MpmiClass::*;
        let expect = [
            (AppId::Mm, Light),
            (AppId::Hs, Light),
            (AppId::Ray, Light),
            (AppId::Fft, Light),
            (AppId::Lps, Medium),
            (AppId::Jpeg, Medium),
            (AppId::Lib, Medium),
            (AppId::Srad, Medium),
            (AppId::Tds, Medium),
            (AppId::Blk, Heavy),
            (AppId::Qtc, Heavy),
            (AppId::Sad, Heavy),
            (AppId::Gups, Heavy),
        ];
        for (app, class) in expect {
            assert_eq!(app.class(), class, "{app}");
        }
    }

    #[test]
    fn profiles_are_sane() {
        for app in AppId::ALL {
            let p = app.profile();
            assert!(p.mean_compute >= 1.0, "{app}");
            assert!(p.divergence >= 1, "{app}");
            assert!(p.hot_pages >= 1, "{app}");
            assert!((0.0..=1.0).contains(&p.cold_prob), "{app}");
            assert!((0.0..=1.0).contains(&p.warm_prob), "{app}");
            assert!((0.0..=1.0).contains(&p.storm_cold_prob), "{app}");
            assert!(p.storm_ops <= p.storm_every_ops, "{app}");
            assert!(p.cold_prob + p.warm_prob <= 1.0, "{app}");
            // Warm regions must fit the 1024-entry L2 TLB standalone.
            assert!(p.warm_pages + p.hot_pages < 1024, "{app}");
            assert!(p.length_scale > 0.0, "{app}");
            assert_eq!(p.pages_per_warp(), p.hot_pages + p.cold_pages);
        }
    }

    #[test]
    fn heavier_classes_have_heavier_knobs() {
        // The product cold_prob*divergence/(mean_compute+1) orders the
        // classes (it is the analytic MPMI estimate).
        let intensity = |a: AppId| {
            let p = a.profile();
            let storm_frac = if p.storm_every_ops > 0 {
                p.storm_ops as f64 / p.storm_every_ops as f64
            } else {
                0.0
            };
            let eff_cold = p.cold_prob * (1.0 - storm_frac) + p.storm_cold_prob * storm_frac;
            eff_cold * p.divergence as f64 / (p.mean_compute + 1.0)
        };
        let max_light = AppId::ALL
            .iter()
            .filter(|a| a.class() == MpmiClass::Light)
            .map(|&a| intensity(a))
            .fold(0.0, f64::max);
        let min_medium = AppId::ALL
            .iter()
            .filter(|a| a.class() == MpmiClass::Medium)
            .map(|&a| intensity(a))
            .fold(f64::INFINITY, f64::min);
        let max_medium = AppId::ALL
            .iter()
            .filter(|a| a.class() == MpmiClass::Medium)
            .map(|&a| intensity(a))
            .fold(0.0, f64::max);
        let min_heavy = AppId::ALL
            .iter()
            .filter(|a| a.class() == MpmiClass::Heavy)
            .map(|&a| intensity(a))
            .fold(f64::INFINITY, f64::min);
        assert!(max_light < min_medium);
        assert!(max_medium < min_heavy);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(AppId::Tds.name(), "3DS");
        assert_eq!(AppId::Gups.to_string(), "GUPS");
        assert_eq!(MpmiClass::Heavy.to_string(), "H");
    }
}
