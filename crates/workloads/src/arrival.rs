//! Seeded arrival-process generators for churn scenarios.
//!
//! The scenario engine replays a timeline of tenant arrivals and
//! departures against the simulator. This module generates those
//! timelines as *plain data* — `(cycle, app)` arrivals and
//! `(cycle, tenant)` departures — so the experiment layer can lower a
//! [`ChurnPlan`] into a scenario without this crate depending on the
//! simulator. Generation is a pure function of the seed: split
//! [`SimRng`] streams draw inter-arrival gaps, application choices, and
//! residency spans independently, so tweaking one knob never reshuffles
//! the draws behind another.
//!
//! Every plan satisfies the scenario engine's timeline rules by
//! construction: the first arrival is at cycle 0, arrival cycles are
//! non-decreasing (arrival order defines tenant indices), each departure
//! falls strictly after its tenant's arrival, no tenant departs twice,
//! and tenant 0 never departs — the GPU is never left empty.

use walksteal_sim_core::SimRng;

use crate::apps::AppId;

/// A generated churn timeline: tenant *i* runs `arrivals[i].1` starting
/// at cycle `arrivals[i].0`; `departures` lists `(cycle, tenant)` exits
/// in chronological order. Tenants with no entry in `departures` stay
/// resident to the end of the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnPlan {
    /// `(cycle, app)` per tenant, in tenant (= arrival) order.
    pub arrivals: Vec<(u64, AppId)>,
    /// `(cycle, tenant)` exits, sorted by cycle (ties by tenant index).
    pub departures: Vec<(u64, usize)>,
}

impl ChurnPlan {
    /// How many tenants arrive over the plan's lifetime.
    #[must_use]
    pub fn n_tenants(&self) -> usize {
        self.arrivals.len()
    }

    /// The applications in tenant order (the static-mix view of the
    /// plan, e.g. for cache keys and table labels).
    #[must_use]
    pub fn apps(&self) -> Vec<AppId> {
        self.arrivals.iter().map(|&(_, app)| app).collect()
    }

    /// The cycle of the last timeline event (arrival or departure).
    #[must_use]
    pub fn last_event_cycle(&self) -> u64 {
        let arr = self.arrivals.iter().map(|&(c, _)| c).max().unwrap_or(0);
        let dep = self.departures.iter().map(|&(c, _)| c).max().unwrap_or(0);
        arr.max(dep)
    }
}

/// A seeded arrival process: geometric inter-arrival gaps, uniform
/// application choice from a pool, and geometric residency spans for the
/// tenants that depart. [`generate`](ArrivalProcess::generate) lowers it
/// to a concrete [`ChurnPlan`] for one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    /// How many tenants arrive in total (the simulator sizes its SM and
    /// walker partitions for all of them up front).
    pub n_tenants: usize,
    /// Mean inter-arrival gap in cycles (geometric; every gap ≥ 1).
    pub mean_gap: u64,
    /// Probability that a given tenant (other than tenant 0, which is
    /// pinned) departs before the run ends.
    pub depart_chance: f64,
    /// Mean resident span in cycles for departing tenants (geometric;
    /// every span ≥ 1, so departures fall strictly after arrival).
    pub mean_residency: u64,
    /// Applications drawn uniformly per arrival.
    pub pool: Vec<AppId>,
}

impl ArrivalProcess {
    /// Light churn: four tenants trickle in over tens of thousands of
    /// cycles and mostly stay — roughly one departure per run.
    #[must_use]
    pub fn light() -> Self {
        ArrivalProcess {
            n_tenants: 4,
            mean_gap: 8_000,
            depart_chance: 0.35,
            mean_residency: 40_000,
            pool: AppId::ALL.to_vec(),
        }
    }

    /// Heavy churn: four tenants arrive back-to-back and most leave
    /// again quickly, forcing frequent repartitions mid-run.
    #[must_use]
    pub fn heavy() -> Self {
        ArrivalProcess {
            n_tenants: 4,
            mean_gap: 1_500,
            depart_chance: 0.85,
            mean_residency: 10_000,
            pool: AppId::ALL.to_vec(),
        }
    }

    /// Generates the plan for one seed. Identical process + seed always
    /// yields an identical plan.
    ///
    /// # Panics
    ///
    /// Panics if the process has no tenants, an empty pool, a zero mean,
    /// or a departure chance outside `[0, 1]`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> ChurnPlan {
        assert!(self.n_tenants > 0, "a plan needs at least one tenant");
        assert!(!self.pool.is_empty(), "the application pool is empty");
        assert!(self.mean_gap > 0 && self.mean_residency > 0, "means must be positive");
        assert!(
            (0.0..=1.0).contains(&self.depart_chance),
            "depart_chance must be a probability, got {}",
            self.depart_chance
        );

        let root = SimRng::new(seed);
        let mut gaps = root.split(1);
        let mut picks = root.split(2);
        let mut spans = root.split(3);

        let mut arrivals = Vec::with_capacity(self.n_tenants);
        let mut cycle = 0u64;
        for t in 0..self.n_tenants {
            if t > 0 {
                cycle += gaps.next_geometric(1.0 / self.mean_gap as f64);
            }
            let app = self.pool[picks.next_below(self.pool.len() as u64) as usize];
            arrivals.push((cycle, app));
        }

        // Tenant 0 is pinned resident so the GPU is never empty.
        let mut departures: Vec<(u64, usize)> = (1..self.n_tenants)
            .filter_map(|t| {
                let leaves = spans.chance(self.depart_chance);
                let span = spans.next_geometric(1.0 / self.mean_residency as f64);
                leaves.then(|| (arrivals[t].0 + span, t))
            })
            .collect();
        departures.sort_unstable();

        ChurnPlan { arrivals, departures }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEEDS: [u64; 6] = [0, 1, 2, 42, 0x5EED, u64::MAX];

    #[test]
    fn generation_is_deterministic_per_seed() {
        for proc in [ArrivalProcess::light(), ArrivalProcess::heavy()] {
            for seed in SEEDS {
                assert_eq!(proc.generate(seed), proc.generate(seed));
            }
            assert_ne!(proc.generate(1), proc.generate(2), "seed is ignored");
        }
    }

    #[test]
    fn plans_satisfy_the_scenario_timeline_rules() {
        for proc in [ArrivalProcess::light(), ArrivalProcess::heavy()] {
            for seed in SEEDS {
                let plan = proc.generate(seed);
                assert_eq!(plan.n_tenants(), proc.n_tenants);
                assert_eq!(plan.arrivals[0].0, 0, "first arrival must be at cycle 0");
                assert!(
                    plan.arrivals.windows(2).all(|w| w[0].0 <= w[1].0),
                    "arrivals must be non-decreasing"
                );
                assert!(
                    plan.departures.windows(2).all(|w| w[0] <= w[1]),
                    "departures must be sorted"
                );
                let mut seen = vec![false; proc.n_tenants];
                for &(cycle, t) in &plan.departures {
                    assert_ne!(t, 0, "tenant 0 is pinned resident");
                    assert!(!seen[t], "tenant {t} departs twice");
                    seen[t] = true;
                    assert!(
                        cycle > plan.arrivals[t].0,
                        "tenant {t} departs at {cycle} but arrives at {}",
                        plan.arrivals[t].0
                    );
                }
                assert!(plan.apps().iter().all(|a| proc.pool.contains(a)));
                assert!(plan.last_event_cycle() >= plan.arrivals[proc.n_tenants - 1].0);
            }
        }
    }

    #[test]
    fn heavy_preset_churns_more_than_light() {
        let (mut light_dep, mut heavy_dep) = (0usize, 0usize);
        let (mut light_span, mut heavy_span) = (0u64, 0u64);
        for seed in 0..32 {
            let l = ArrivalProcess::light().generate(seed);
            let h = ArrivalProcess::heavy().generate(seed);
            light_dep += l.departures.len();
            heavy_dep += h.departures.len();
            light_span += l.arrivals[l.n_tenants() - 1].0;
            heavy_span += h.arrivals[h.n_tenants() - 1].0;
        }
        assert!(heavy_dep > light_dep, "heavy churn should depart more ({heavy_dep} vs {light_dep})");
        assert!(heavy_span < light_span, "heavy churn should arrive faster");
        assert!(heavy_dep > 0, "heavy preset never departs anyone");
    }

    #[test]
    fn streams_are_independent_knobs() {
        // Disabling departures must not reshuffle arrivals or app picks.
        let mut still = ArrivalProcess::light();
        still.depart_chance = 0.0;
        for seed in SEEDS {
            let churn = ArrivalProcess::light().generate(seed);
            let fixed = still.generate(seed);
            assert_eq!(churn.arrivals, fixed.arrivals);
            assert!(fixed.departures.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_depart_chance_panics() {
        let mut p = ArrivalProcess::light();
        p.depart_chance = 1.5;
        let _ = p.generate(0);
    }
}
