//! Synthetic workload models of the paper's 13 MAFIA benchmarks.
//!
//! The paper drives its simulator with CUDA applications from the MAFIA
//! framework, classified Light / Medium / Heavy by their L2-TLB misses per
//! million instructions (MPMI; Table II). We cannot execute CUDA binaries,
//! so each application is modeled as a parameterized statistical stream of
//! warp operations ([`WarpStream`]) that reproduces the three properties the
//! paper's results depend on (DESIGN.md, substitution 1):
//!
//! 1. **Standalone MPMI class** — Light (< 25), Medium (25–80), or
//!    Heavy (> 80), via the size of per-warp *hot* and *cold* page regions
//!    and the probability of touching the cold region.
//! 2. **Access pattern** — sequential / strided / random page selection and
//!    per-instruction divergence (distinct pages per memory instruction;
//!    GUPS and SAD coalesce poorly).
//! 3. **Compute intensity** — mean compute-burst length between memory
//!    instructions, which converts walk latency into IPC loss.
//!
//! Calibration targets live in integration tests (`tests/calibration.rs` at
//! the workspace root) that run each app standalone and assert its MPMI
//! band.

pub mod apps;
pub mod arrival;
pub mod mixes;
pub mod pairs;
pub mod stream;
pub mod synth;

pub use apps::{AppId, AppProfile, HotPattern, MpmiClass};
pub use arrival::{ArrivalProcess, ChurnPlan};
pub use mixes::{mixes_for, paper_mixes3, paper_mixes4, WorkloadMix, MAX_MIX_TENANTS};
pub use pairs::{named_pairs, paper_pairs, WorkloadPair};
pub use stream::{WarpOp, WarpStream};
pub use synth::synthetic_profile;
/// Re-exported so callers naming [`WarpOp::refs`]'s element type need not
/// depend on `walksteal-gpu` directly.
pub use walksteal_gpu::MemRef;
