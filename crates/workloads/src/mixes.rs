//! N-tenant workload mixes for the scenario engine.
//!
//! The paper's scalability study (§VII.F, Fig. 13) runs three- and
//! four-tenant combinations of the 13 MAFIA applications. [`WorkloadMix`]
//! generalizes [`WorkloadPair`] to N co-running applications with a class
//! signature ("HML" = one Heavy, one Medium, one Light), and the curated
//! [`paper_mixes3`] / [`paper_mixes4`] sets fix the seven combinations per
//! tenant count that the figure evaluates — weighted toward mixes with at
//! least one Heavy (VM-sensitive) constituent, while keeping signature
//! diversity.

use std::fmt;

use crate::apps::{AppId, MpmiClass};
use crate::pairs::WorkloadPair;

/// The largest mix the scenario engine runs (matches the experiment
/// cache's per-key app capacity).
pub const MAX_MIX_TENANTS: usize = 4;

/// An N-tenant workload: `apps()[i]` is tenant *i*'s application.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadMix {
    apps: Vec<AppId>,
}

impl WorkloadMix {
    /// Creates a mix of 2 to [`MAX_MIX_TENANTS`] applications, in tenant
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the app count is outside `2..=MAX_MIX_TENANTS`.
    #[must_use]
    pub fn new(apps: impl Into<Vec<AppId>>) -> Self {
        let apps = apps.into();
        assert!(
            (2..=MAX_MIX_TENANTS).contains(&apps.len()),
            "a mix has 2..={MAX_MIX_TENANTS} tenants, got {}",
            apps.len()
        );
        WorkloadMix { apps }
    }

    /// The applications, in tenant order.
    #[must_use]
    pub fn apps(&self) -> &[AppId] {
        &self.apps
    }

    /// How many tenants the mix runs.
    #[must_use]
    pub fn n_tenants(&self) -> usize {
        self.apps.len()
    }

    /// The mix's class signature, heaviest constituents first ("HML",
    /// "HHLL", …) — the N-tenant generalization of
    /// [`WorkloadPair::class`].
    #[must_use]
    pub fn class(&self) -> String {
        let mut classes: Vec<MpmiClass> = self.apps.iter().map(|a| a.class()).collect();
        classes.sort_by(|x, y| y.cmp(x));
        classes.iter().map(ToString::to_string).collect()
    }

    /// Whether the mix is virtual-memory sensitive (contains at least one
    /// Heavy application).
    #[must_use]
    pub fn is_vm_sensitive(&self) -> bool {
        self.apps.iter().any(|a| a.class() == MpmiClass::Heavy)
    }

    /// The mix as a [`WorkloadPair`] when it has exactly two tenants, so
    /// two-tenant mixes can reuse the pair-shaped experiment path (and its
    /// cache keys).
    #[must_use]
    pub fn as_pair(&self) -> Option<WorkloadPair> {
        match *self.apps {
            [a, b] => Some(WorkloadPair::new(a, b)),
            _ => None,
        }
    }
}

impl From<WorkloadPair> for WorkloadMix {
    fn from(p: WorkloadPair) -> Self {
        WorkloadMix::new([p.a, p.b])
    }
}

impl fmt::Display for WorkloadMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, app) in self.apps.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{app}")?;
        }
        Ok(())
    }
}

macro_rules! mix {
    ($($a:ident),+) => {
        WorkloadMix::new([$(AppId::$a),+])
    };
}

/// The seven curated three-tenant mixes (the paper's Fig. 13 combinations):
/// five with one Heavy, two all-Heavy, signatures HML through HHH.
#[must_use]
pub fn paper_mixes3() -> Vec<WorkloadMix> {
    vec![
        mix!(Gups, Tds, Mm),
        mix!(Sad, Lps, Hs),
        mix!(Blk, Jpeg, Fft),
        mix!(Qtc, Srad, Ray),
        mix!(Gups, Sad, Mm),
        mix!(Blk, Tds, Hs),
        mix!(Gups, Blk, Lps),
    ]
}

/// The seven curated four-tenant mixes (the paper's Fig. 13 combinations).
#[must_use]
pub fn paper_mixes4() -> Vec<WorkloadMix> {
    vec![
        mix!(Gups, Tds, Mm, Hs),
        mix!(Sad, Blk, Jpeg, Fft),
        mix!(Qtc, Lps, Ray, Mm),
        mix!(Gups, Sad, Tds, Srad),
        mix!(Blk, Qtc, Hs, Mm),
        mix!(Gups, Jpeg, Lib, Fft),
        mix!(Sad, Srad, Ray, Hs),
    ]
}

/// The curated mix set for `n` tenants: the twelve representative
/// [`named_pairs`](crate::pairs::named_pairs) at `n == 2`, the Fig. 13
/// combinations at `n == 3` and `n == 4`, and empty otherwise.
#[must_use]
pub fn mixes_for(n: usize) -> Vec<WorkloadMix> {
    match n {
        2 => crate::pairs::named_pairs()
            .into_iter()
            .map(|(_, p)| p.into())
            .collect(),
        3 => paper_mixes3(),
        4 => paper_mixes4(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn curated_sets_are_seven_distinct_mixes_each() {
        for (n, mixes) in [(3, paper_mixes3()), (4, paper_mixes4())] {
            assert_eq!(mixes.len(), 7, "{n}-tenant set");
            let set: HashSet<Vec<AppId>> = mixes
                .iter()
                .map(|m| {
                    let mut apps = m.apps().to_vec();
                    apps.sort();
                    apps
                })
                .collect();
            assert_eq!(set.len(), 7, "duplicate {n}-tenant mix");
            for m in &mixes {
                assert_eq!(m.n_tenants(), n, "{m}");
                // No app appears twice within one mix.
                let distinct: HashSet<_> = m.apps().iter().collect();
                assert_eq!(distinct.len(), n, "{m} repeats an app");
            }
        }
    }

    #[test]
    fn curated_sets_lean_vm_sensitive_with_class_diversity() {
        for mixes in [paper_mixes3(), paper_mixes4()] {
            let sensitive = mixes.iter().filter(|m| m.is_vm_sensitive()).count();
            assert!(sensitive >= 5, "most mixes should contain a Heavy app");
            let signatures: HashSet<_> = mixes.iter().map(WorkloadMix::class).collect();
            assert!(signatures.len() >= 3, "signatures too uniform");
        }
    }

    #[test]
    fn class_signature_sorts_heaviest_first() {
        assert_eq!(mix!(Mm, Tds, Gups).class(), "HML");
        assert_eq!(mix!(Gups, Tds, Mm).class(), "HML");
        assert_eq!(mix!(Gups, Sad, Mm).class(), "HHL");
        assert_eq!(mix!(Hs, Mm, Fft, Ray).class(), "LLLL");
        assert_eq!(mix!(Gups, Mm).class(), "HL");
    }

    #[test]
    fn two_tenant_mixes_round_trip_through_pairs() {
        let pair = WorkloadPair::new(AppId::Gups, AppId::Mm);
        let m = WorkloadMix::from(pair);
        assert_eq!(m.as_pair(), Some(pair));
        assert_eq!(m.class(), pair.class());
        assert_eq!(m.to_string(), pair.to_string());
        assert_eq!(mix!(Gups, Tds, Mm).as_pair(), None);
    }

    #[test]
    fn mixes_for_covers_the_supported_tenant_counts() {
        assert_eq!(mixes_for(2).len(), 12);
        assert_eq!(mixes_for(3), paper_mixes3());
        assert_eq!(mixes_for(4), paper_mixes4());
        assert!(mixes_for(1).is_empty());
        assert!(mixes_for(5).is_empty());
    }

    #[test]
    fn display_joins_app_names_with_dots() {
        assert_eq!(mix!(Gups, Tds, Mm).to_string(), "GUPS.3DS.MM");
        assert_eq!(mix!(Sad, Blk, Jpeg, Fft).to_string(), "SAD.BLK.JPEG.FFT");
    }

    #[test]
    #[should_panic(expected = "2..=4 tenants")]
    fn single_app_mix_panics() {
        let _ = WorkloadMix::new([AppId::Gups]);
    }
}
