//! The multi-tenant workload pairs of the paper's evaluation.
//!
//! The 13 applications yield 78 possible pairs; the paper evaluates 45 of
//! them, weighting toward the virtual-memory-sensitive HL/HM/HH classes
//! (32 of the 45) while keeping representatives of LL/ML/MM. We fix a
//! canonical 45-pair list with exactly that split, containing every pair
//! the paper names in its tables and figures.

use std::fmt;

use crate::apps::{AppId, MpmiClass};

/// A two-tenant workload: `a` is tenant 0, `b` is tenant 1.
///
/// Following the paper's naming, the heavier application is listed first
/// (e.g. `GUPS.MM` is Heavy-with-Light).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadPair {
    /// Tenant 0's application.
    pub a: AppId,
    /// Tenant 1's application.
    pub b: AppId,
}

impl WorkloadPair {
    /// Creates a pair.
    #[must_use]
    pub fn new(a: AppId, b: AppId) -> Self {
        WorkloadPair { a, b }
    }

    /// The workload's class label, heavier constituent first ("HL", "MM", …).
    #[must_use]
    pub fn class(self) -> String {
        let (x, y) = if self.a.class() >= self.b.class() {
            (self.a.class(), self.b.class())
        } else {
            (self.b.class(), self.a.class())
        };
        format!("{x}{y}")
    }

    /// Both applications.
    #[must_use]
    pub fn apps(self) -> [AppId; 2] {
        [self.a, self.b]
    }

    /// Whether the workload is virtual-memory sensitive (HL, HM, or HH) —
    /// the paper's "32 of 45" subset.
    #[must_use]
    pub fn is_vm_sensitive(self) -> bool {
        self.a.class() == MpmiClass::Heavy || self.b.class() == MpmiClass::Heavy
    }
}

impl fmt::Display for WorkloadPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.a, self.b)
    }
}

macro_rules! pair {
    ($a:ident, $b:ident) => {
        WorkloadPair {
            a: AppId::$a,
            b: AppId::$b,
        }
    };
}

/// The canonical 45 pairs: 3 LL + 5 ML + 5 MM + 12 HL + 14 HM + 6 HH
/// (13 VM-insensitive, 32 VM-sensitive, matching the paper's split).
#[must_use]
pub fn paper_pairs() -> Vec<WorkloadPair> {
    vec![
        // LL (3)
        pair!(Hs, Mm),
        pair!(Fft, Hs),
        pair!(Ray, Fft),
        // ML (5)
        pair!(Tds, Fft),
        pair!(Lib, Mm),
        pair!(Lps, Ray),
        pair!(Jpeg, Hs),
        pair!(Srad, Mm),
        // MM (5)
        pair!(Tds, Srad),
        pair!(Lib, Jpeg),
        pair!(Lps, Tds),
        pair!(Srad, Jpeg),
        pair!(Lib, Lps),
        // HL (12)
        pair!(Blk, Hs),
        pair!(Gups, Mm),
        pair!(Sad, Mm),
        pair!(Qtc, Fft),
        pair!(Blk, Mm),
        pair!(Gups, Hs),
        pair!(Sad, Ray),
        pair!(Qtc, Hs),
        pair!(Blk, Fft),
        pair!(Gups, Ray),
        pair!(Sad, Fft),
        pair!(Qtc, Ray),
        // HM (14)
        pair!(Blk, Tds),
        pair!(Gups, Jpeg),
        pair!(Gups, Tds),
        pair!(Sad, Tds),
        pair!(Blk, Lib),
        pair!(Qtc, Lps),
        pair!(Sad, Srad),
        pair!(Gups, Lib),
        pair!(Blk, Srad),
        pair!(Qtc, Jpeg),
        pair!(Sad, Lps),
        pair!(Gups, Lps),
        pair!(Blk, Jpeg),
        pair!(Qtc, Srad),
        // HH (6)
        pair!(Gups, Sad),
        pair!(Qtc, Blk),
        pair!(Sad, Qtc),
        pair!(Gups, Blk),
        pair!(Sad, Blk),
        pair!(Gups, Qtc),
    ]
}

/// The two representative pairs per class the paper names in
/// Tables III, V, and VI.
#[must_use]
pub fn named_pairs() -> Vec<(&'static str, WorkloadPair)> {
    vec![
        ("LL", pair!(Hs, Mm)),
        ("LL", pair!(Fft, Hs)),
        ("ML", pair!(Tds, Fft)),
        ("ML", pair!(Lib, Mm)),
        ("MM", pair!(Tds, Srad)),
        ("MM", pair!(Lib, Jpeg)),
        ("HL", pair!(Blk, Hs)),
        ("HL", pair!(Gups, Mm)),
        ("HM", pair!(Blk, Tds)),
        ("HM", pair!(Gups, Jpeg)),
        ("HH", pair!(Gups, Sad)),
        ("HH", pair!(Qtc, Blk)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn forty_five_distinct_pairs() {
        let pairs = paper_pairs();
        assert_eq!(pairs.len(), 45);
        let set: HashSet<_> = pairs
            .iter()
            .map(|p| {
                let mut apps = [p.a, p.b];
                apps.sort();
                apps
            })
            .collect();
        assert_eq!(set.len(), 45, "duplicate pair");
        // No self-pairs.
        assert!(pairs.iter().all(|p| p.a != p.b));
    }

    #[test]
    fn class_split_matches_paper() {
        let pairs = paper_pairs();
        let count = |c: &str| pairs.iter().filter(|p| p.class() == c).count();
        assert_eq!(count("LL"), 3);
        assert_eq!(count("ML"), 5);
        assert_eq!(count("MM"), 5);
        assert_eq!(count("HL"), 12);
        assert_eq!(count("HM"), 14);
        assert_eq!(count("HH"), 6);
        assert_eq!(pairs.iter().filter(|p| p.is_vm_sensitive()).count(), 32);
    }

    #[test]
    fn heavier_app_listed_first() {
        for p in paper_pairs() {
            assert!(
                p.a.class() >= p.b.class(),
                "{p}: {:?} should come first",
                p.b
            );
        }
    }

    #[test]
    fn named_pairs_are_in_the_45() {
        let all = paper_pairs();
        for (class, p) in named_pairs() {
            assert!(all.contains(&p), "{p} missing from paper_pairs");
            assert_eq!(p.class(), class, "{p}");
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(
            WorkloadPair::new(AppId::Gups, AppId::Mm).to_string(),
            "GUPS.MM"
        );
        assert_eq!(
            WorkloadPair::new(AppId::Blk, AppId::Tds).to_string(),
            "BLK.3DS"
        );
    }

    #[test]
    fn class_label_orders_heavy_first() {
        assert_eq!(WorkloadPair::new(AppId::Mm, AppId::Gups).class(), "HL");
        assert_eq!(WorkloadPair::new(AppId::Gups, AppId::Mm).class(), "HL");
        assert_eq!(WorkloadPair::new(AppId::Hs, AppId::Mm).class(), "LL");
    }
}
