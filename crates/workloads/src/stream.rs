//! Per-warp operation streams.
//!
//! A [`WarpStream`] deterministically generates one warp's alternation of
//! compute bursts and (already coalesced) memory references according to its
//! application's [`AppProfile`]. Streams are seeded per (tenant, warp), so a
//! whole simulation replays from a single seed.

use walksteal_gpu::MemRef;
use walksteal_sim_core::{SimRng, Vpn};

use crate::apps::{AppProfile, HotPattern};

/// Lines per 4 KB page with 128-byte lines.
const LINES_PER_PAGE: u32 = 32;

/// One warp operation: a compute burst followed by a memory instruction
/// touching `refs` (already coalesced; one translation per distinct page).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpOp {
    /// Compute instructions to issue before the memory instruction.
    pub compute: u64,
    /// Coalesced accesses of the memory instruction.
    pub refs: Vec<MemRef>,
}

impl WarpOp {
    /// Total warp instructions this op retires (compute + 1 memory
    /// instruction).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.compute + 1
    }
}

/// A deterministic generator of one warp's operations for one execution.
///
/// # Examples
///
/// ```
/// use walksteal_workloads::{AppId, WarpStream};
///
/// let mut stream = WarpStream::new(AppId::Gups.profile(), 0, 7, 1_000);
/// let op = stream.next_op().expect("budget not exhausted");
/// assert!(!op.refs.is_empty());
/// // Same seed, same stream:
/// let mut again = WarpStream::new(AppId::Gups.profile(), 0, 7, 1_000);
/// assert_eq!(again.next_op().unwrap(), op);
/// ```
#[derive(Debug, Clone)]
pub struct WarpStream {
    profile: AppProfile,
    rng: SimRng,
    seed: u64,
    /// First page of this warp's hot region.
    hot_base: u64,
    /// First page of the tenant-shared warm region.
    warm_base: u64,
    /// First page of this warp's cold region.
    cold_base: u64,

    /// Sequential/strided cursor within the hot region (page units scaled
    /// by line cursor).
    hot_line_cursor: u64,
    /// Warp operations issued, for storm phase tracking.
    op_counter: u64,
    /// Storm phase offset: warps of one tenant storm together, different
    /// tenants storm out of phase (derived from the tenant seed).
    storm_phase: u64,
    /// Remaining warp instructions in this execution.
    remaining: u64,
    budget: u64,
    /// `(1 - p).ln()` for the compute-burst geometric draw, hoisted out of
    /// the per-op loop (`p = 1 / mean_compute`). NaN-free: `p < 1` here;
    /// `p >= 1` is handled by the `mean_compute <= 1` fast path.
    geom_ln: f64,
}

impl WarpStream {
    /// Creates the stream for warp `warp_index` (globally unique within the
    /// tenant) with `budget` warp instructions per execution (before the
    /// profile's `length_scale`).
    ///
    /// The *hot* region is shared by every warp of the tenant (tiles and
    /// stencil neighborhoods really are shared data), so it stays resident
    /// in the L1s. The *cold* region is private per warp — co-scheduled
    /// warps with disjoint page working sets are exactly what thrashes the
    /// TLB (the paper's BLK observation).
    #[must_use]
    pub fn new(profile: AppProfile, seed: u64, warp_index: u64, budget: u64) -> Self {
        let scaled = ((budget as f64 * profile.length_scale) as u64).max(1);
        let span = profile.cold_pages + 1; // +1 guard page of slack
        let warm_base = profile.hot_pages;
        let storm_phase = if profile.storm_every_ops > 0 {
            // Same phase for every warp of a tenant (they share `seed`).
            SimRng::new(seed).next_below(profile.storm_every_ops)
        } else {
            0
        };
        WarpStream {
            profile,
            rng: SimRng::new(seed).split(warp_index),
            seed,
            op_counter: 0,
            storm_phase,
            hot_base: 0,
            warm_base,
            cold_base: warm_base + profile.warm_pages + warp_index * span,
            hot_line_cursor: warp_index * 7, // desynchronize hot phases
            remaining: scaled,
            budget: scaled,
            geom_ln: (1.0 - 1.0 / profile.mean_compute.max(1.0)).ln(),
        }
    }

    /// The warp-instruction budget of one execution (after scaling).
    #[must_use]
    pub fn execution_length(&self) -> u64 {
        self.budget
    }

    /// Warp instructions still to issue this execution.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Restarts the stream for a fresh execution (the relaunch methodology).
    /// The random stream continues rather than repeating, as a relaunched
    /// application would traverse its data afresh.
    pub fn relaunch(&mut self) {
        self.remaining = self.budget;
    }

    fn hot_page(&mut self) -> u64 {
        let p = &self.profile;
        match p.hot_pattern {
            HotPattern::Sequential => {
                self.hot_line_cursor += 1;
                (self.hot_line_cursor / u64::from(LINES_PER_PAGE)) % p.hot_pages
            }
            HotPattern::Strided(stride) => {
                self.hot_line_cursor += stride;
                (self.hot_line_cursor / u64::from(LINES_PER_PAGE)) % p.hot_pages
            }
            HotPattern::Random => self.rng.next_below(p.hot_pages),
        }
    }

    /// Whether the warp is currently in a miss storm (phase change).
    fn in_storm(&self) -> bool {
        self.profile.storm_every_ops > 0
            && (self.op_counter + self.storm_phase) % self.profile.storm_every_ops
                < self.profile.storm_ops
    }

    fn next_ref(&mut self) -> MemRef {
        let p = self.profile;
        let cold_prob = if self.in_storm() {
            p.storm_cold_prob
        } else {
            p.cold_prob
        };
        let draw = self.rng.next_f64();
        let cold = p.cold_pages > 0 && draw < cold_prob;
        let warm = !cold && p.warm_pages > 0 && draw < cold_prob + p.warm_prob;
        let (page, line) = if cold {
            (
                self.cold_base + self.rng.next_below(p.cold_pages),
                self.rng.next_below(u64::from(LINES_PER_PAGE)) as u32,
            )
        } else if warm {
            (
                self.warm_base + self.rng.next_below(p.warm_pages),
                self.rng.next_below(u64::from(LINES_PER_PAGE)) as u32,
            )
        } else {
            let page = self.hot_base + self.hot_page();
            let line = match p.hot_pattern {
                HotPattern::Sequential | HotPattern::Strided(_) => {
                    (self.hot_line_cursor % u64::from(LINES_PER_PAGE)) as u32
                }
                HotPattern::Random => self.rng.next_below(u64::from(LINES_PER_PAGE)) as u32,
            };
            (page, line)
        };
        MemRef {
            vpn: Vpn(page),
            line_in_page: line,
        }
    }

    /// The next warp operation, or `None` once the execution's instruction
    /// budget is spent (relaunch to continue).
    pub fn next_op(&mut self) -> Option<WarpOp> {
        let mut refs = Vec::with_capacity(self.profile.divergence);
        let compute = self.next_op_into(&mut refs)?;
        Some(WarpOp { compute, refs })
    }

    /// Allocation-free variant of [`next_op`](Self::next_op): clears `refs`
    /// and fills it with the op's coalesced references (distinct, in first
    /// appearance order), returning the compute burst. The simulator's inner
    /// loop reuses one buffer per warp through this.
    pub fn next_op_into(&mut self, refs: &mut Vec<MemRef>) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.op_counter += 1;
        let p = self.profile;
        let burst = if p.mean_compute <= 1.0 {
            1
        } else {
            self.rng.next_geometric_ln(self.geom_ln)
        }
        .min(self.remaining.saturating_sub(1).max(1));
        refs.clear();
        // Order-preserving dedup without the O(divergence²) scan: a 64-bit
        // signature of the refs pushed so far. An unset bit proves the ref is
        // new; only a set bit (possible collision) falls back to the exact
        // linear check.
        let mut sig: u64 = 0;
        for _ in 0..p.divergence {
            let r = self.next_ref();
            let h = (r.vpn.0 ^ (u64::from(r.line_in_page) << 52))
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let bit = 1u64 << (h >> 58);
            if sig & bit == 0 || !refs.contains(&r) {
                refs.push(r);
                sig |= bit;
            }
        }
        self.remaining = self.remaining.saturating_sub(burst + 1);
        Some(burst)
    }

    /// The seed this stream derives from (for diagnostics).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppId;

    #[test]
    fn deterministic_replay() {
        let mut a = WarpStream::new(AppId::Sad.profile(), 42, 3, 5_000);
        let mut b = WarpStream::new(AppId::Sad.profile(), 42, 3, 5_000);
        for _ in 0..200 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn next_op_into_matches_next_op() {
        for app in [AppId::Gups, AppId::Mm, AppId::Sad] {
            let mut a = WarpStream::new(app.profile(), 9, 2, 4_000);
            let mut b = WarpStream::new(app.profile(), 9, 2, 4_000);
            let mut refs = Vec::new();
            loop {
                let op = a.next_op();
                let compute = b.next_op_into(&mut refs);
                assert_eq!(op.as_ref().map(|o| o.compute), compute);
                assert_eq!(op.as_ref().map(|o| o.refs.as_slice()), compute.map(|_| refs.as_slice()));
                assert_eq!(a.remaining(), b.remaining());
                if op.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn cold_regions_are_disjoint_but_hot_is_shared() {
        let p = AppId::Blk.profile();
        let span = p.cold_pages + 1;
        let mut w0 = WarpStream::new(p, 1, 0, 10_000);
        let mut w1 = WarpStream::new(p, 1, 1, 10_000);
        let hot = 0..p.hot_pages;
        let cold0 = p.hot_pages..p.hot_pages + span;
        let cold1 = p.hot_pages + span..p.hot_pages + 2 * span;
        for _ in 0..300 {
            for r in w0.next_op().unwrap().refs {
                assert!(
                    hot.contains(&r.vpn.0) || cold0.contains(&r.vpn.0),
                    "warp 0 escaped: {:?}",
                    r.vpn
                );
            }
            for r in w1.next_op().unwrap().refs {
                assert!(
                    hot.contains(&r.vpn.0) || cold1.contains(&r.vpn.0),
                    "warp 1 escaped: {:?}",
                    r.vpn
                );
            }
        }
    }

    #[test]
    fn budget_is_respected() {
        let mut s = WarpStream::new(AppId::Mm.profile(), 9, 0, 500);
        let mut total = 0;
        while let Some(op) = s.next_op() {
            total += op.instructions();
        }
        // length_scale for MM is 1.0; we may overshoot by at most one burst.
        assert!(total >= 500, "total {total}");
        assert!(total < 500 + 100, "total {total}");
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn relaunch_restores_budget_and_advances_data() {
        let mut s = WarpStream::new(AppId::Gups.profile(), 5, 2, 400);
        let first: Vec<WarpOp> = std::iter::from_fn(|| s.next_op()).collect();
        s.relaunch();
        assert_eq!(s.remaining(), s.execution_length());
        let second: Vec<WarpOp> = std::iter::from_fn(|| s.next_op()).collect();
        // GUPS is random: a relaunch continues the random traversal.
        assert_ne!(first, second);
    }

    #[test]
    fn divergent_apps_emit_multiple_pages() {
        let mut s = WarpStream::new(AppId::Gups.profile(), 7, 0, 100_000);
        let mut max_refs = 0;
        for _ in 0..500 {
            max_refs = max_refs.max(s.next_op().unwrap().refs.len());
        }
        assert!(max_refs > 1, "GUPS should fan out, saw {max_refs}");
    }

    #[test]
    fn coalesced_apps_emit_single_ref() {
        let mut s = WarpStream::new(AppId::Hs.profile(), 7, 0, 100_000);
        for _ in 0..500 {
            assert_eq!(s.next_op().unwrap().refs.len(), 1);
        }
    }

    #[test]
    fn sequential_pattern_walks_lines_in_order() {
        let mut s = WarpStream::new(AppId::Hs.profile(), 3, 0, 1_000_000);
        // Collect hot-region refs; lines should mostly increment by 1.
        let mut last: Option<u32> = None;
        let mut in_order = 0;
        let mut total = 0;
        for _ in 0..1000 {
            let op = s.next_op().unwrap();
            let r = op.refs[0];
            if r.vpn.0 < AppId::Hs.profile().hot_pages {
                if let Some(prev) = last {
                    total += 1;
                    if r.line_in_page == (prev + 1) % 32 || r.line_in_page == prev {
                        in_order += 1;
                    }
                }
                last = Some(r.line_in_page);
            }
        }
        assert!(in_order as f64 > total as f64 * 0.9, "{in_order}/{total}");
    }

    #[test]
    fn execution_length_scales() {
        let s = WarpStream::new(AppId::Ray.profile(), 0, 0, 1000);
        assert_eq!(s.execution_length(), 1200); // RAY length_scale = 1.2
    }

    #[test]
    fn mean_compute_matches_profile() {
        let p = AppId::Lib.profile();
        let mut s = WarpStream::new(p, 11, 0, u64::MAX / 2);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| s.next_op().unwrap().compute).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - p.mean_compute).abs() < p.mean_compute * 0.1,
            "mean {mean} vs {}",
            p.mean_compute
        );
    }
}
