//! Seeded synthetic tenant generation for the scenario fuzzer.
//!
//! The 13 calibrated MAFIA profiles cover 13 points of the workload space;
//! the fuzzer needs arbitrary footprints, reuse/stride distributions, and
//! storm shapes beyond them. [`synthetic_profile`] draws a random
//! [`AppProfile`] from a deterministic [`SimRng`] stream, spanning (and
//! slightly exceeding) the calibrated ranges while honoring the structural
//! constraints the stream machinery assumes — the same constraints
//! `profiles_are_sane` pins for the calibrated set, re-checkable through
//! [`sanity`].

use walksteal_sim_core::SimRng;

use crate::apps::{AppId, AppProfile, HotPattern};

/// Draws one synthetic application profile. Deterministic in the RNG
/// stream: the same `SimRng` state always yields the same profile.
///
/// The `id` is drawn from [`AppId::ALL`] purely as a label (display name in
/// results and repro files); behavior comes entirely from the sampled
/// knobs, which intentionally wander outside the calibrated envelope —
/// e.g. compute intensities up to ~2× GUPS-sparse, footprints from a
/// single hot page up to 4096 cold pages, and storm duty cycles up to 50%.
#[must_use]
pub fn synthetic_profile(rng: &mut SimRng) -> AppProfile {
    let id = AppId::ALL[rng.next_below(AppId::ALL.len() as u64) as usize];

    let mean_compute = 1.0 + rng.next_f64() * 50.0;
    let divergence = 1 + rng.next_below(6) as usize;

    let hot_pages = 1 + rng.next_below(12);
    // Power-of-two-ish cold footprints with jitter: 1 page .. ~4096 pages.
    let cold_pages = (1u64 << rng.next_below(12)) + rng.next_below(16);
    // Keep hot + warm under the 1024-page structural bound with headroom.
    let warm_pages = if rng.chance(0.5) {
        rng.next_below(1000 - hot_pages)
    } else {
        0
    };

    let cold_prob = rng.next_f64() * 0.95;
    let warm_prob = if warm_pages > 0 {
        (1.0 - cold_prob) * rng.next_f64() * 0.9
    } else {
        0.0
    };

    let (storm_every_ops, storm_ops, storm_cold_prob) = if rng.chance(0.6) {
        let every = 100 + rng.next_below(1900);
        let ops = 1 + rng.next_below(every / 2);
        (every, ops, rng.next_f64())
    } else {
        (0, 0, 0.0)
    };

    let hot_pattern = match rng.next_below(3) {
        0 => HotPattern::Sequential,
        1 => HotPattern::Strided(1 + rng.next_below(15)),
        _ => HotPattern::Random,
    };

    AppProfile {
        id,
        mean_compute,
        divergence,
        hot_pages,
        cold_pages,
        cold_prob,
        warm_pages,
        warm_prob,
        storm_every_ops,
        storm_ops,
        storm_cold_prob,
        hot_pattern,
        length_scale: 0.5 + rng.next_f64() * 1.5,
    }
}

/// The structural constraints every profile — calibrated or synthetic —
/// must satisfy for the warp-stream machinery to behave: non-degenerate
/// compute/divergence, a non-empty hot region, probabilities in range and
/// jointly ≤ 1, storms no longer than their period, and hot+warm regions
/// inside the 1024-page layout bound.
pub fn sanity(p: &AppProfile) -> Result<(), String> {
    let fail = |what: &str| Err(format!("profile {}: {what}", p.id));
    if p.mean_compute < 1.0 {
        return fail("mean_compute < 1.0");
    }
    if p.divergence < 1 {
        return fail("divergence < 1");
    }
    if p.hot_pages < 1 {
        return fail("hot_pages < 1");
    }
    for (name, prob) in [
        ("cold_prob", p.cold_prob),
        ("warm_prob", p.warm_prob),
        ("storm_cold_prob", p.storm_cold_prob),
    ] {
        if !(0.0..=1.0).contains(&prob) {
            return fail(&format!("{name} outside [0, 1]"));
        }
    }
    if p.cold_prob + p.warm_prob > 1.0 {
        return fail("cold_prob + warm_prob > 1");
    }
    if p.storm_ops > p.storm_every_ops {
        return fail("storm longer than its period");
    }
    if p.warm_pages + p.hot_pages >= 1024 {
        return fail("hot + warm regions exceed the 1024-page layout bound");
    }
    if p.length_scale <= 0.0 {
        return fail("length_scale <= 0");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every synthetic draw satisfies the same structural constraints the
    /// calibrated profiles are pinned to, and JSON round-trips exactly.
    #[test]
    fn synthetic_profiles_are_sane_and_round_trip() {
        let mut rng = SimRng::new(0x5EED);
        for case in 0..500 {
            let p = synthetic_profile(&mut rng);
            sanity(&p).unwrap_or_else(|e| panic!("case {case}: {e}"));
            let back = AppProfile::from_json(&p.to_json())
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert_eq!(p, back, "case {case}: JSON round-trip changed the profile");
        }
    }

    /// Calibrated profiles pass the library sanity check too (it is the
    /// same property `profiles_are_sane` asserts in `apps.rs`).
    #[test]
    fn calibrated_profiles_pass_sanity() {
        for app in AppId::ALL {
            sanity(&app.profile()).unwrap();
        }
    }

    /// Same RNG state, same profile — the generator is deterministic.
    #[test]
    fn generator_is_deterministic() {
        let draw = |seed: u64| {
            let mut rng = SimRng::new(seed);
            (0..32).map(|_| synthetic_profile(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
