//! Capacity planning: can a provider buy their way out of walker
//! contention with more hardware, or is scheduling the better lever?
//!
//! Sweeps the number of page-table walkers and the L2 TLB size for a
//! heavy+medium pair under the baseline shared queue and under DWS
//! (paper §IV "does increasing TLB size and PTWs solve the problem?" and
//! Fig. 12).
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use walksteal::multitenant::{GpuConfig, PolicyPreset, SimulationBuilder};
use walksteal::workloads::AppId;

fn base() -> GpuConfig {
    GpuConfig::default()
        .with_n_sms(10)
        .with_warps_per_sm(12)
        .with_instructions_per_warp(2_000)
}

fn main() {
    let apps = [AppId::Sad, AppId::Jpeg];
    println!("SAD (heavy) + JPEG (medium), sweeping hardware vs policy.\n");

    println!(
        "{:<16} {:>10} {:>10} {:>8}",
        "configuration", "Baseline", "DWS", "DWS gain"
    );
    let mut reference = 0.0;
    for (label, entries, walkers) in [
        ("512e TLB, 12 PTW", 512, 12),
        ("1024e TLB, 16 PTW", 1024, 16),
        ("2048e TLB, 24 PTW", 2048, 24),
        ("4096e TLB, 32 PTW", 4096, 32),
    ] {
        let mk = |preset| {
            let cfg = base().with_l2_tlb_entries(entries).with_walkers(walkers);
            SimulationBuilder::new()
                .config(cfg)
                .preset(preset)
                .tenants(apps)
                .seed(3)
                .build()
                .run()
                .total_ipc()
        };
        let b = mk(PolicyPreset::Baseline);
        let d = mk(PolicyPreset::Dws);
        if reference == 0.0 {
            reference = b;
        }
        println!(
            "{label:<16} {:>10.3} {:>10.3} {:>7.1}%",
            b,
            d,
            (d / b - 1.0) * 100.0
        );
    }
    println!(
        "\nMore hardware lifts both bars, but uncontrolled interleaving keeps\n\
         the baseline below DWS at the same resource point — controlling\n\
         interference beats buying capacity (paper §IV, Fig. 12)."
    );
}
