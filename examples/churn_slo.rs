//! Dynamic tenancy: arrivals, departures, and an SLO-driven controller.
//!
//! A real multi-tenant GPU is not a fixed pair of apps — tenants arrive,
//! run for a while, and leave, and the operator promises each a walk-
//! latency SLO. This example scripts such a timeline with the scenario
//! DSL: MM is resident from cycle 0 with a p99 walk-latency target, GUPS
//! arrives later as a noisy neighbor, and the QoS controller samples the
//! metrics registry, throttles the aggressor when MM's target is violated,
//! and evicts it if the violations persist.
//!
//! ```text
//! cargo run --release --example churn_slo
//! ```

use walksteal::multitenant::{
    PolicyPreset, ScenarioSpec, SimulationBuilder, SloPolicy,
};
use walksteal::workloads::AppId;

fn main() {
    // The timeline: MM at cycle 0 under a 900-cycle p99 SLO; GUPS crashes
    // the party at cycle 10k and would leave on its own at 80k — if the
    // controller tolerates it that long.
    let spec = ScenarioSpec::new()
        .arrive(0, AppId::Mm)
        .slo_target(0, 900)
        .arrive(10_000, AppId::Gups)
        .depart(80_000, 1)
        .slo_policy(SloPolicy {
            check_interval: 5_000, // sample each tenant's p99 every 5k cycles
            evict_after: 3,        // three straight violations evict the aggressor
            min_samples: 32,       // don't judge a quiet tenant
        });

    for preset in [PolicyPreset::Baseline, PolicyPreset::Dws] {
        let r = SimulationBuilder::new()
            .n_sms(8)
            .warps_per_sm(8)
            .instructions_per_warp(1_200)
            .walkers(16)
            .preset(preset)
            .scenario(spec.clone())
            .seed(42)
            .build()
            .run();
        let churn = r.churn.expect("scenario runs report churn");
        println!("== {} ==", preset.label());
        for (t, ch) in churn.tenants.iter().enumerate() {
            let fate = match (ch.departed, ch.evicted) {
                (Some(c), true) => format!("evicted @{c}"),
                (Some(c), false) => format!("departed @{c}"),
                (None, _) => "ran to the end".into(),
            };
            println!(
                "  tenant {t} ({:<4}) {:<16} lifetime IPC {:.3}  SLO {:>5.1}%",
                r.tenants[t].app.name(),
                fate,
                ch.lifetime_ipc(),
                100.0 * ch.slo_compliance(),
            );
        }
        println!(
            "  evictions {}  throttles {}  walker repartitions {}\n",
            churn.evictions, churn.throttles, churn.repartitions
        );
    }
    println!(
        "The controller watches the victim's p99, not the aggressor's\n\
         traffic: under DWS the extra stolen walkers often keep MM inside\n\
         its target, so GUPS is tolerated longer than under the baseline."
    );
}
