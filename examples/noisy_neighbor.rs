//! Noisy neighbor: a cloud provider's view of the throughput ↔ fairness
//! trade-off.
//!
//! A medium tenant (3DS) is co-located with the noisiest possible neighbor
//! (GUPS). The example sweeps every walk-scheduling policy the paper
//! compares and reports throughput, weighted IPC, and fairness, showing how
//! DWS++'s steal-aggressiveness knob moves along the trade-off curve
//! (paper Fig. 10).
//!
//! ```text
//! cargo run --release --example noisy_neighbor
//! ```

use walksteal::multitenant::{fairness, weighted_ipc, GpuConfig, PolicyPreset, SimulationBuilder};
use walksteal::workloads::AppId;

fn base() -> GpuConfig {
    GpuConfig::default()
        .with_n_sms(10)
        .with_warps_per_sm(12)
        .with_instructions_per_warp(2_500)
}

fn main() {
    let victim = AppId::Tds;
    let noisy = AppId::Gups;
    println!(
        "Victim {} sharing a GPU with noisy neighbor {}.\n",
        victim, noisy
    );

    // Stand-alone IPCs: each tenant alone on its SM share with the whole
    // memory system to itself.
    // Triple the solo budget so one-time compulsory misses don't bias the
    // reference (co-running tenants amortize them over relaunches).
    let sa: Vec<f64> = [noisy, victim]
        .iter()
        .map(|&app| {
            let cfg = base().with_n_sms(5).with_instructions_per_warp(7_500);
            let r = SimulationBuilder::new()
                .config(cfg)
                .tenant(app)
                .seed(7)
                .build()
                .run();
            r.tenants[0].ipc
        })
        .collect();

    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "policy", "total IPC", "wIPC", "fairness", "GUPS slow", "3DS slow"
    );
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::StaticPartition,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlusConservative,
        PolicyPreset::DwsPlusPlus,
        PolicyPreset::DwsPlusPlusAggressive,
    ] {
        let r = SimulationBuilder::new()
            .config(base())
            .preset(preset)
            .tenants([noisy, victim])
            .seed(7)
            .build()
            .run();
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.3} {:>9.2}x {:>9.2}x",
            preset.label(),
            r.total_ipc(),
            weighted_ipc(&r, &sa),
            fairness(&r, &sa),
            sa[0] / r.tenants[0].ipc.max(1e-9),
            sa[1] / r.tenants[1].ipc.max(1e-9),
        );
    }
    println!(
        "\nStatic partitioning protects the victim but strands walkers;\n\
         DWS recovers throughput; the DWS++ variants trade some of it back\n\
         for fairness by stealing more (aggressive) or less (conservative)."
    );
}
