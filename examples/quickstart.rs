//! Quickstart: simulate a walk-intensive tenant (GUPS) sharing a GPU with a
//! light one (matrix multiply), under today's shared page-walk queue and
//! under dynamic walk stealing (DWS).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use walksteal::multitenant::{PolicyPreset, SimResult, SimulationBuilder};
use walksteal::workloads::AppId;

fn run(preset: PolicyPreset) -> SimResult {
    // A reduced machine so the example finishes in seconds; drop the
    // overrides for the paper's full 30-SM configuration.
    SimulationBuilder::new()
        .n_sms(10)
        .warps_per_sm(12)
        .instructions_per_warp(2_500)
        .preset(preset)
        .tenants([AppId::Gups, AppId::Mm])
        .seed(42)
        .build()
        .run()
}

fn main() {
    println!("Two tenants: GUPS (walk-heavy) + MM (light), 5 SMs each.\n");
    let mut baseline_total = 0.0;
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlus,
    ] {
        let r = run(preset);
        if preset == PolicyPreset::Baseline {
            baseline_total = r.total_ipc();
        }
        println!(
            "{:<9} total IPC {:.3} ({:+.1}% vs baseline)",
            preset.label(),
            r.total_ipc(),
            (r.total_ipc() / baseline_total - 1.0) * 100.0
        );
        for t in &r.tenants {
            println!(
                "  {:<5} ipc {:>7.3}  walk-latency {:>7.0} cy  interleaved-behind {:>6.2} \
                 foreign walks  {:>4.1}% serviced by stealing",
                t.app.name(),
                t.ipc,
                t.mean_walk_latency,
                t.mean_interleave,
                t.stolen_fraction * 100.0
            );
        }
        println!();
    }
    println!(
        "DWS bounds cross-tenant interleaving at the walkers, so the light\n\
         tenant's page walks stop queueing behind the heavy tenant's."
    );
}
