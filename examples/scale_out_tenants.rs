//! Scaling beyond two tenants: four applications on one GPU.
//!
//! DWS and DWS++ are defined for N tenants (paper §VI.C and Fig. 13): the
//! walker pool is partitioned N ways, the TWM grows linearly, and a free
//! walker steals from the tenant with the most pending walks. This example
//! runs one heavy, one medium, and two light tenants together.
//!
//! ```text
//! cargo run --release --example scale_out_tenants
//! ```

use walksteal::multitenant::{PolicyPreset, SimulationBuilder};
use walksteal::workloads::AppId;

fn main() {
    let apps = [AppId::Gups, AppId::Tds, AppId::Mm, AppId::Hs];
    println!("Four tenants: {:?}\n", apps.map(|a| a.name()));

    let mut baseline = 0.0;
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::StaticPartition,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlus,
    ] {
        // 12 SMs -> 3 per tenant; 16 walkers -> 4 per tenant.
        let r = SimulationBuilder::new()
            .n_sms(12)
            .warps_per_sm(10)
            .instructions_per_warp(1_500)
            .preset(preset)
            .tenants(apps)
            .seed(11)
            .build()
            .run();
        if preset == PolicyPreset::Baseline {
            baseline = r.total_ipc();
        }
        let per_tenant: Vec<String> = r
            .tenants
            .iter()
            .map(|t| format!("{} {:.2}", t.app.name(), t.ipc))
            .collect();
        println!(
            "{:<9} total IPC {:>6.3} ({:+5.1}%)   [{}]",
            preset.label(),
            r.total_ipc(),
            (r.total_ipc() / baseline - 1.0) * 100.0,
            per_tenant.join(", ")
        );
    }
    println!(
        "\nWith four address spaces sharing 16 walkers, the shared queue\n\
         interleaves everyone behind GUPS; per-tenant walker ownership with\n\
         stealing preserves both isolation and utilization."
    );
}
