//! Storm timeline: watch walk-queue pressure over time.
//!
//! Real kernels emit bursts of TLB misses at phase changes; the workload
//! models reproduce that with miss storms. This example samples the walk
//! subsystem every few thousand cycles and renders queue depth and walker
//! occupancy as sparklines — under the baseline the victim's storms pile up
//! behind the neighbor's walks; under DWS each tenant's storms drain
//! through its own (plus stolen) walkers.
//!
//! ```text
//! cargo run --release --example storm_timeline
//! ```

use walksteal::multitenant::{PolicyPreset, Sample, SimulationBuilder};
use walksteal::workloads::AppId;

const BARS: [char; 8] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇'];

fn sparkline(values: &[f64], max: f64) -> String {
    values
        .iter()
        .map(|&v| {
            let idx = if max > 0.0 {
                ((v / max) * (BARS.len() - 1) as f64).round() as usize
            } else {
                0
            };
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

fn render(label: &str, timeline: &[Sample]) {
    // Bucket the timeline into at most 72 columns.
    let cols = 72usize.min(timeline.len().max(1));
    let chunk = timeline.len().div_ceil(cols);
    let queue: Vec<f64> = timeline
        .chunks(chunk)
        .map(|c| c.iter().map(|s| s.queued_walks as f64).sum::<f64>() / c.len() as f64)
        .collect();
    let busy: Vec<f64> = timeline
        .chunks(chunk)
        .map(|c| c.iter().map(|s| s.busy_walkers as f64).sum::<f64>() / c.len() as f64)
        .collect();
    let qmax = queue.iter().copied().fold(0.0, f64::max);
    println!("{label}");
    println!(
        "  queue depth (max {qmax:>5.0}): {}",
        sparkline(&queue, qmax)
    );
    println!("  busy walkers (of 16):      {}", sparkline(&busy, 16.0));
}

fn main() {
    let apps = [AppId::Sad, AppId::Jpeg];
    println!("SAD (heavy) + JPEG (medium, bursty) — walk-subsystem pressure over time.\n");
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::StaticPartition,
        PolicyPreset::Dws,
    ] {
        let r = SimulationBuilder::new()
            .n_sms(10)
            .warps_per_sm(12)
            .instructions_per_warp(2_000)
            .sample_interval(2_000)
            .preset(preset)
            .tenants(apps)
            .seed(5)
            .build()
            .run();
        render(
            &format!(
                "{:<9} total IPC {:.3} ({} samples over {} cycles)",
                preset.label(),
                r.total_ipc(),
                r.timeline.len(),
                r.cycles
            ),
            &r.timeline,
        );
        println!();
    }
}
