#!/usr/bin/env bash
# Perf-smoke gate: run `repro --selftest-perf` and compare the end-to-end
# simulation throughput — plus the batched translation subsystem rates —
# against the checked-in BENCH_parallel.json baseline. The threshold is
# generous — each gated number must stay above 70% of its baseline —
# because CI runners are noisy and heterogeneous; the gate exists to catch
# real regressions (an accidental O(n^2), a lost fast path, a batch entry
# point silently degrading to element-wise cost), not single-digit drift.
#
# `repro --selftest-perf` writes BENCH_parallel.json into its working
# directory, so the selftest runs in a scratch dir and the checked-in
# baseline stays untouched. Environment knobs:
#   PERF_GATE_OUT   keep the fresh report here (CI uploads it as an artifact)
#   PERF_GATE_JOBS  worker count for the parallel-scaling section (default 2)
set -euo pipefail
cd "$(dirname "$0")/.."

# First numeric value of a top-level or nested "key": N in a JSON report.
field() { grep -o "\"$2\": [0-9.]*" "$1" | head -1 | awk '{print $2}'; }

repro="$PWD/target/release/repro"
if [ ! -x "$repro" ]; then
  echo "perf gate: target/release/repro missing — run cargo build --release first" >&2
  exit 1
fi

out="${PERF_GATE_OUT:-$(mktemp -d)}"
mkdir -p "$out"
(cd "$out" && "$repro" --selftest-perf --jobs "${PERF_GATE_JOBS:-2}" > selftest.stdout)

host=$(field "$out/BENCH_parallel.json" host_parallelism)
echo "perf gate: host_parallelism $host"

fail=0
# gate <metric-key> <label>: compare fresh vs checked-in, floor 70%.
gate() {
  local key="$1" label="$2" base cur
  base=$(field BENCH_parallel.json "$key")
  cur=$(field "$out/BENCH_parallel.json" "$key")
  if [ -z "$base" ] || [ -z "$cur" ]; then
    echo "perf gate: FAIL - $label ($key) missing from baseline or fresh report"
    fail=1
    return
  fi
  awk -v b="$base" -v c="$cur" -v l="$label" 'BEGIN {
    ratio = c / b
    if (ratio < 0.70) {
      printf "perf gate: FAIL - %s: %.0f/s is %.0f%% of the %.0f/s baseline (floor 70%%)\n", l, c, ratio * 100, b
      exit 1
    }
    printf "perf gate: OK - %s: %.2fx of the checked-in baseline (%.0f/s vs %.0f/s)\n", l, ratio, c, b
  }' || fail=1
}

gate events_per_sec "end-to-end simulation"
gate tlb_batch_ops_per_sec "batched TLB probe"
gate walk_sched_batch_ops_per_sec "batched walk scheduler"
gate mem_access_batch_ops_per_sec "batched memory system"

if [ "$fail" -ne 0 ]; then
  echo "perf gate: FAIL"
  exit 1
fi
echo "perf gate: all gated metrics OK"
