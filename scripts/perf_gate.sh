#!/usr/bin/env bash
# Perf-smoke gate: run `repro --selftest-perf` and compare the end-to-end
# simulation throughput against the checked-in BENCH_parallel.json
# baseline. The threshold is generous — the run must stay above 70% of the
# baseline — because CI runners are noisy and heterogeneous; the gate
# exists to catch real regressions (an accidental O(n^2), a lost fast
# path), not single-digit drift.
#
# `repro --selftest-perf` writes BENCH_parallel.json into its working
# directory, so the selftest runs in a scratch dir and the checked-in
# baseline stays untouched. Environment knobs:
#   PERF_GATE_OUT   keep the fresh report here (CI uploads it as an artifact)
#   PERF_GATE_JOBS  worker count for the parallel-scaling section (default 2)
set -euo pipefail
cd "$(dirname "$0")/.."

# First numeric value of a top-level or nested "key": N in a JSON report.
field() { grep -o "\"$2\": [0-9.]*" "$1" | head -1 | awk '{print $2}'; }

repro="$PWD/target/release/repro"
if [ ! -x "$repro" ]; then
  echo "perf gate: target/release/repro missing — run cargo build --release first" >&2
  exit 1
fi

baseline=$(field BENCH_parallel.json events_per_sec)
out="${PERF_GATE_OUT:-$(mktemp -d)}"
mkdir -p "$out"
(cd "$out" && "$repro" --selftest-perf --jobs "${PERF_GATE_JOBS:-2}" > selftest.stdout)
current=$(field "$out/BENCH_parallel.json" events_per_sec)
host=$(field "$out/BENCH_parallel.json" host_parallelism)

echo "perf gate: end-to-end $current ev/s vs baseline $baseline ev/s (host_parallelism $host)"
awk -v b="$baseline" -v c="$current" 'BEGIN {
  ratio = c / b
  if (ratio < 0.70) {
    printf "perf gate: FAIL - %.0f ev/s is %.0f%% of the %.0f ev/s baseline (floor 70%%)\n", c, ratio * 100, b
    exit 1
  }
  printf "perf gate: OK - %.2fx of the checked-in baseline\n", ratio
}'
