#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green.
#
# Everything here runs offline (no crates.io access) — the workspace has no
# external dependencies by design. See ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== determinism: serial vs --jobs 4 =="
cargo test -q --test determinism

echo "== perf selftest =="
./target/release/repro --selftest-perf --jobs "${TIER1_JOBS:-4}"

echo "tier-1 OK"
