#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green.
#
# Everything here runs offline (no crates.io access) — the workspace has no
# external dependencies by design. See ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== determinism: serial vs --jobs 4 =="
cargo test -q --test determinism

echo "== perf gate: selftest vs checked-in baseline =="
PERF_GATE_JOBS="${TIER1_JOBS:-4}" bash scripts/perf_gate.sh

echo "== fault-injection smoke =="
# Inject a job panic plus a corrupt cache file into a quick-scale run: the
# suite must survive (quarantine + retry), exit with code 2, and still print
# byte-identical tables.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
./target/release/repro --quick --jobs 1 --cache "$SMOKE/cache" fig9 > "$SMOKE/clean.txt"
rc=0
./target/release/repro --quick --cache "$SMOKE/cache" \
  --inject-faults panic=1,corrupt=1,seed=7 fig9 > "$SMOKE/faulted.txt" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "fault-injection smoke: expected exit code 2, got $rc" >&2
  exit 1
fi
cmp "$SMOKE/clean.txt" "$SMOKE/faulted.txt"
test -d "$SMOKE/cache/quick/quarantine"

echo "== n-tenant smoke =="
# The scenario engine must handle more than two tenants and at least one
# sensitivity axis end-to-end: a 3-tenant table with its gmean rows, a
# walker sweep whose canonical point is labelled, and a clean exit-code-2
# diagnostic (not a panic) for a tenant count the hardware can't split.
./target/release/repro --quick --cache "$SMOKE/ncache" --tenants 3 tenants3 > "$SMOKE/tenants3.txt"
grep -q "gmean ALL" "$SMOKE/tenants3.txt"
./target/release/repro --quick --cache "$SMOKE/ncache" --sweep walkers > "$SMOKE/sweep.txt"
grep -q "16 walkers" "$SMOKE/sweep.txt"
rc=0
./target/release/repro --quick --cache "$SMOKE/ncache" --tenants 5 tenants > /dev/null 2> "$SMOKE/tenants5.err" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "n-tenant smoke: --tenants 5 should exit 2, got $rc" >&2
  exit 1
fi
grep -q "tenants" "$SMOKE/tenants5.err"

echo "== trace smoke =="
# Trace one pair at quick scale: the run must exit 0, emit valid JSONL
# (repro replays the trace and self-checks pw_share bit-for-bit before
# exiting 0), and every line must be a JSON object tagged with "ev".
./target/release/repro --quick --trace "$SMOKE/trace.jsonl" \
  --trace-filter walk,steal,epoch --pair GUPS,MM --policy dws > "$SMOKE/timeline.txt"
test -s "$SMOKE/trace.jsonl"
if grep -qv '^{"ev":' "$SMOKE/trace.jsonl"; then
  echo "trace smoke: malformed JSONL line in trace" >&2
  exit 1
fi

echo "== churn smoke =="
# The dynamic-tenancy engine end-to-end: the churn suites print their
# golden-guarded tables (the heavy suite must show at least one eviction),
# --suite aliases an experiment name, and --scenario runs a hand-written
# JSON timeline through the SLO controller.
./target/release/repro --quick --cache "$SMOKE/churn" --suite churn_light churn_heavy > "$SMOKE/churn.txt"
grep -q "Fairness under churn (light)" "$SMOKE/churn.txt"
grep -q "Fairness under churn (heavy)" "$SMOKE/churn.txt"
# Heavy churn under the tight SLO must actually evict somewhere (the mean
# eviction row is non-zero in the golden table).
grep -q "Evict" "$SMOKE/churn.txt"
cat > "$SMOKE/scenario.json" <<'EOF'
{
  "events": [
    {"arrive": {"cycle": 0, "app": "GUPS"}},
    {"arrive": {"cycle": 0, "app": "MM"}},
    {"slo_target": {"tenant": 1, "p99_cycles": 900}},
    {"depart": {"cycle": 60000, "tenant": 0}}
  ],
  "slo": {"check_interval": 5000, "evict_after": 3, "min_samples": 32}
}
EOF
./target/release/repro --quick --scenario "$SMOKE/scenario.json" > "$SMOKE/scenario.txt"
grep -q "tenant 0 (GUPS)" "$SMOKE/scenario.txt"
grep -q "evictions" "$SMOKE/scenario.txt"

echo "== arena smoke =="
# The policy arena end-to-end: the quick-field leaderboard ranks every
# related-work competitor against Baseline / DWS / DWS++ and matches the
# golden snapshot byte-for-byte.
./target/release/repro --quick --cache "$SMOKE/arena" --suite arena_quick > "$SMOKE/arena.txt"
grep -q "Policy arena (quick field)" "$SMOKE/arena.txt"
grep -q "MOSAIC" "$SMOKE/arena.txt"
grep -q "SE-TLB" "$SMOKE/arena.txt"
grep -q "DE-GUARD" "$SMOKE/arena.txt"
cmp "$SMOKE/arena.txt" tests/golden/arena_suite.txt

echo "== fuzz + cache-audit smoke =="
# Replay the checked-in corpus plus a short seeded campaign through the
# stacked differential oracle (scheduler lockstep, batched-vs-scalar,
# trace-replay self-check, fault equivalence). Any divergence exits 1
# after writing a minimized repro under results/fuzz/repros/.
./target/release/repro --fuzz 10 --fuzz-seed 42 2> "$SMOKE/fuzz.txt"
grep -q "clean" "$SMOKE/fuzz.txt"
grep -q "coverage:" "$SMOKE/fuzz.txt"
# The cache auditor must pass a sample of the smoke cache populated above.
./target/release/repro --quick --cache "$SMOKE/cache" --verify-cache 3 2> "$SMOKE/audit.txt"
grep -q -- "-> 0 stale" "$SMOKE/audit.txt"

echo "tier-1 OK"
