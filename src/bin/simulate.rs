//! `simulate` — run one custom multi-tenant GPU simulation from the
//! command line.
//!
//! ```text
//! simulate --apps GUPS,MM [--policy dws] [--sms 30] [--warps 24]
//!          [--budget 6000] [--tlb 1024] [--walkers 16] [--pages 64k]
//!          [--seed 42] [--json]
//!
//! policies: baseline baseline2x stlb stlbptw static dws dws++ dws++cons
//!           dws++aggr mask mask+dws
//! ```

use std::process::ExitCode;

use walksteal::multitenant::{GpuConfig, PolicyPreset, SimulationBuilder};
use walksteal::vm::PageSize;
use walksteal::workloads::AppId;

fn usage() -> &'static str {
    "usage: simulate --apps A,B[,C...] [--policy P] [--sms N] [--warps N] \
     [--budget N] [--tlb ENTRIES] [--walkers N] [--pages 4k|64k] [--seed N] [--json]\n\
     apps:     MM HS RAY FFT LPS JPEG LIB SRAD 3DS BLK QTC SAD GUPS\n\
     policies: baseline baseline2x stlb stlbptw static dws dws++ dws++cons \
     dws++aggr mask mask+dws"
}

fn parse_app(name: &str) -> Option<AppId> {
    AppId::from_name(name)
}

fn main() -> ExitCode {
    let mut apps: Vec<AppId> = Vec::new();
    let mut policy = PolicyPreset::Baseline;
    let mut cfg = GpuConfig::default();
    let mut seed = 42u64;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    macro_rules! next_value {
        ($flag:expr) => {
            match args.next() {
                Some(v) => v,
                None => {
                    eprintln!("{} needs a value\n{}", $flag, usage());
                    return ExitCode::FAILURE;
                }
            }
        };
    }
    macro_rules! parse_or_fail {
        ($s:expr, $what:expr) => {
            match $s.parse() {
                Ok(v) => v,
                Err(_) => {
                    eprintln!("invalid {}: {}\n{}", $what, $s, usage());
                    return ExitCode::FAILURE;
                }
            }
        };
    }

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--apps" => {
                let list = next_value!("--apps");
                for name in list.split(',') {
                    match parse_app(name.trim()) {
                        Some(a) => apps.push(a),
                        None => {
                            eprintln!("unknown app {name}\n{}", usage());
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            "--policy" => {
                let p = next_value!("--policy");
                match p.parse::<PolicyPreset>() {
                    Ok(v) => policy = v,
                    Err(e) => {
                        eprintln!("{e}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--sms" => {
                let v = next_value!("--sms");
                cfg = cfg.with_n_sms(parse_or_fail!(v, "SM count"));
            }
            "--warps" => {
                let v = next_value!("--warps");
                cfg = cfg.with_warps_per_sm(parse_or_fail!(v, "warp count"));
            }
            "--budget" => {
                let v = next_value!("--budget");
                cfg = cfg.with_instructions_per_warp(parse_or_fail!(v, "budget"));
            }
            "--tlb" => {
                let v = next_value!("--tlb");
                cfg = cfg.with_l2_tlb_entries(parse_or_fail!(v, "TLB entries"));
            }
            "--walkers" => {
                let v = next_value!("--walkers");
                cfg = cfg.with_walkers(parse_or_fail!(v, "walker count"));
            }
            "--pages" => {
                let v = next_value!("--pages");
                cfg = match v.to_ascii_lowercase().as_str() {
                    "4k" => cfg.with_page_size(PageSize::Small4K),
                    "64k" => cfg.with_page_size(PageSize::Large64K),
                    other => {
                        eprintln!("unknown page size {other} (4k or 64k)");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--seed" => {
                let v = next_value!("--seed");
                seed = parse_or_fail!(v, "seed");
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    if apps.is_empty() {
        eprintln!("--apps is required\n{}", usage());
        return ExitCode::FAILURE;
    }
    if cfg.n_sms % apps.len() != 0 {
        eprintln!(
            "{} SMs cannot split evenly among {} tenants (use --sms)",
            cfg.n_sms,
            apps.len()
        );
        return ExitCode::FAILURE;
    }

    // The builder applies the tenant count before the preset: S-(TLB+PTW)
    // multiplies walker/queue resources by the tenant count at preset time.
    let result = SimulationBuilder::new()
        .config(cfg)
        .preset(policy)
        .tenants(apps)
        .seed(seed)
        .build()
        .run();

    if json {
        println!("{}", result.to_json().pretty());
        return ExitCode::SUCCESS;
    }

    println!(
        "policy {} | {} tenants | {} cycles | total IPC {:.3}\n",
        policy.label(),
        result.tenants.len(),
        result.cycles,
        result.total_ipc()
    );
    println!(
        "{:<6} {:>8} {:>6} {:>9} {:>10} {:>11} {:>8} {:>8} {:>8}",
        "app", "IPC", "execs", "MPMI", "walk lat", "interleave", "stolen%", "PW shr", "TLB shr"
    );
    for t in &result.tenants {
        println!(
            "{:<6} {:>8.3} {:>6} {:>9.1} {:>10.0} {:>11.2} {:>8.1} {:>8.2} {:>8.2}",
            t.app.name(),
            t.ipc,
            t.completed_executions,
            t.mpmi,
            t.mean_walk_latency,
            t.mean_interleave,
            t.stolen_fraction * 100.0,
            t.pw_share,
            t.tlb_share,
        );
    }
    ExitCode::SUCCESS
}
