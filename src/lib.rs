//! # walksteal
//!
//! A from-scratch Rust reproduction of *Improving GPU Multi-tenancy with Page
//! Walk Stealing* (B. Pratheek, Neha Jawalkar, Arkaprava Basu — HPCA 2021).
//!
//! GPUs share one L2 TLB and one pool of page-table walkers across all
//! streaming multiprocessors. Under spatial multi-tenancy (multiple
//! applications resident at once, as with NVIDIA MPS/MIG) walk requests from
//! independent tenants interleave in the shared walk queue, so a tenant with a
//! modest page-walk rate queues behind tens of walks from a walk-intensive
//! neighbor. The paper proposes **dynamic walk stealing (DWS)**: soft-partition
//! the walkers per tenant (per-walker queues + ownership) and let an idle
//! walker *steal* a pending walk from another tenant, bounding cross-tenant
//! interleaving to at most one walk. **DWS++** loosens the steal condition
//! with an epoch-adaptive imbalance threshold to trade throughput for
//! fairness.
//!
//! This crate is a facade that re-exports the whole workspace:
//!
//! * [`sim`] — discrete-event kernel, typed ids, RNG, statistics.
//! * [`mem`] — caches, MSHRs, DRAM channel model.
//! * [`vm`] — page tables, TLBs, page-walk cache, walkers, and the
//!   walk-scheduling policies (baseline shared queue, static partition,
//!   DWS, DWS++, MASK-style tokens).
//! * [`gpu`] — SMs, warps, GTO scheduling, coalescing.
//! * [`workloads`] — synthetic models of the 13 MAFIA benchmarks.
//! * [`multitenant`] — the composed multi-tenant GPU simulator, the paper's
//!   methodology, and its metrics (total IPC, weighted IPC, fairness, …).
//! * [`experiments`] — runners that regenerate every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use walksteal::multitenant::{GpuConfig, PolicyPreset, Simulation};
//! use walksteal::workloads::AppId;
//!
//! // Two tenants: page-walk-heavy GUPS next to a light matrix multiply,
//! // at toy scale so the doctest runs in milliseconds.
//! let cfg = GpuConfig::default()
//!     .with_preset(PolicyPreset::Dws)
//!     .with_n_sms(4)
//!     .with_warps_per_sm(4)
//!     .with_instructions_per_warp(300);
//! let result = Simulation::new(cfg, &[AppId::Gups, AppId::Mm], 1).run();
//! assert!(result.total_ipc() > 0.0);
//! ```

pub use walksteal_experiments as experiments;
pub use walksteal_gpu as gpu;
pub use walksteal_mem as mem;
pub use walksteal_multitenant as multitenant;
pub use walksteal_sim_core as sim;
pub use walksteal_vm as vm;
pub use walksteal_workloads as workloads;
