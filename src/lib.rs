//! # walksteal
//!
//! A from-scratch Rust reproduction of *Improving GPU Multi-tenancy with Page
//! Walk Stealing* (B. Pratheek, Neha Jawalkar, Arkaprava Basu — HPCA 2021).
//!
//! GPUs share one L2 TLB and one pool of page-table walkers across all
//! streaming multiprocessors. Under spatial multi-tenancy (multiple
//! applications resident at once, as with NVIDIA MPS/MIG) walk requests from
//! independent tenants interleave in the shared walk queue, so a tenant with a
//! modest page-walk rate queues behind tens of walks from a walk-intensive
//! neighbor. The paper proposes **dynamic walk stealing (DWS)**: soft-partition
//! the walkers per tenant (per-walker queues + ownership) and let an idle
//! walker *steal* a pending walk from another tenant, bounding cross-tenant
//! interleaving to at most one walk. **DWS++** loosens the steal condition
//! with an epoch-adaptive imbalance threshold to trade throughput for
//! fairness.
//!
//! This crate is a facade that re-exports the whole workspace:
//!
//! * [`sim`] — discrete-event kernel, typed ids, RNG, statistics.
//! * [`mem`] — caches, MSHRs, DRAM channel model.
//! * [`vm`] — page tables, TLBs, page-walk cache, walkers, and the
//!   walk-scheduling policies (baseline shared queue, static partition,
//!   DWS, DWS++, MASK-style tokens).
//! * [`gpu`] — SMs, warps, GTO scheduling, coalescing.
//! * [`workloads`] — synthetic models of the 13 MAFIA benchmarks.
//! * [`multitenant`] — the composed multi-tenant GPU simulator, the paper's
//!   methodology, and its metrics (total IPC, weighted IPC, fairness, …).
//! * [`experiments`] — runners that regenerate every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use walksteal::prelude::*;
//!
//! // Two tenants: page-walk-heavy GUPS next to a light matrix multiply,
//! // at toy scale so the doctest runs in milliseconds.
//! let result = SimulationBuilder::new()
//!     .tenants([AppId::Gups, AppId::Mm])
//!     .preset(PolicyPreset::Dws)
//!     .n_sms(4)
//!     .warps_per_sm(4)
//!     .instructions_per_warp(300)
//!     .seed(1)
//!     .build()
//!     .run();
//! assert!(result.total_ipc() > 0.0);
//! ```
//!
//! To watch what the walk schedulers are doing, attach observability sinks
//! through the same builder:
//!
//! ```
//! use walksteal::prelude::*;
//!
//! let trace = RingTracer::unbounded();
//! let metrics = SharedMetrics::new();
//! let result = SimulationBuilder::new()
//!     .tenants([AppId::Gups, AppId::Mm])
//!     .preset(PolicyPreset::Dws)
//!     .n_sms(4)
//!     .warps_per_sm(4)
//!     .instructions_per_warp(300)
//!     .tracer(trace.clone())
//!     .metrics(metrics.clone())
//!     .build()
//!     .run();
//! // Every completed walk left a trace event and a latency observation.
//! let walks: u64 = metrics.counter("walks_completed", Some(0))
//!     + metrics.counter("walks_completed", Some(1));
//! assert!(walks > 0 && !trace.events().is_empty());
//! assert!(result.total_ipc() > 0.0);
//! ```

pub use walksteal_experiments as experiments;
pub use walksteal_gpu as gpu;
pub use walksteal_mem as mem;
pub use walksteal_multitenant as multitenant;
pub use walksteal_sim_core as sim;
pub use walksteal_vm as vm;
pub use walksteal_vm::invariants;
pub use walksteal_workloads as workloads;

/// The one-stop import for driving the simulator: builder, policy presets,
/// workloads, results, budgets, and the observability types.
///
/// ```
/// use walksteal::prelude::*;
///
/// let r = SimulationBuilder::new()
///     .tenant(AppId::Mm)
///     .n_sms(2)
///     .warps_per_sm(2)
///     .instructions_per_warp(200)
///     .build()
///     .run();
/// assert_eq!(r.tenants.len(), 1);
/// ```
pub mod prelude {
    pub use walksteal_multitenant::{
        fairness, total_ipc, weighted_ipc, ChurnReport, GpuConfig, PolicyPreset, ScenarioEvent,
        ScenarioSpec, SimResult, Simulation, SimulationBuilder, SloPolicy, TenantChurn,
        TenantResult, TenantSpec,
    };
    pub use walksteal_sim_core::{
        Json, JsonlTracer, MetricsRegistry, NullTracer, RingTracer, RunBudget, SharedMetrics,
        SimError, TraceEvent, TraceFilter, TraceKind, Tracer,
    };
    pub use walksteal_workloads::{named_pairs, paper_pairs, AppId, WorkloadPair};
}
