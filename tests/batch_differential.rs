//! Lockstep differential tests for the cycle-batched translation entry
//! points: every batched API against its scalar equivalent, on identical
//! randomized traffic.
//!
//! The batched hot path ([`Tlb::probe_batch`] / [`Tlb::probe_run`],
//! [`PwCache::probe_batch`], [`WalkSubsystem::try_enqueue_batch`]) exists
//! purely to cut constant factors; its contract is that state evolution —
//! results, LRU order, statistics, every accept/reject and steal decision —
//! is *identical* to calling the scalar API once per element in order.
//! These tests pin that contract the way `walk_differential.rs` pins the
//! optimized scheduler against the reference scan implementation: drive
//! both sides in lockstep and compare everything observable after every
//! step.
//!
//! The last test is the batching legality property itself: same-cycle
//! arrivals *from one tenant* (the granularity the simulator batches at —
//! one warp's coalesced references, one SM's same-cycle misses) may be
//! presented to the scheduler in any order without changing its walker
//! assignments or steal decisions, because those depend only on scheduler
//! state, never on the VPN being walked. Cross-tenant order stays
//! semantic — an earlier arrival can take the queue slot or idle walker a
//! later one would have used — which is why the batch APIs are
//! order-preserving rather than sorting.

use walksteal::mem::{AccessKind, CacheConfig, DramConfig, MemSystem, MemSystemConfig};
use walksteal::multitenant::{GpuConfig, PolicyPreset};
use walksteal::sim::{
    BinaryHeapQueue, Cycle, EventQueue, LineAddr, Observer, PhysAddr, Ppn, SimRng, TenantId, Vpn,
};
use walksteal::vm::walk::WalkContext;
use walksteal::vm::{
    DispatchedWalk, FrameAlloc, PageSize, PageTable, PwCache, Replacement, StealMode, Tlb,
    TlbConfig, WalkConfig, WalkPolicyKind, WalkRequest, WalkSubsystem,
};

const TENANT_COUNTS: [usize; 3] = [2, 3, 4];
const SEEDS: [u64; 3] = [0xB1, 0xB2, 0xB3];

fn tlb(n_tenants: usize) -> Tlb {
    // Tiny sets force evictions so the batch paths see misses, refills,
    // and LRU churn, not just a warm cache.
    Tlb::new(
        TlbConfig {
            sets: 4,
            ways: 2,
            replacement: Replacement::Lru,
        },
        n_tenants,
    )
}

/// Random (tenant, vpn) with deliberate repeats, so batches contain the
/// consecutive-duplicate runs (warp divergence) the dedup memo targets.
fn traffic(rng: &mut SimRng, n_tenants: usize, prev: Option<(TenantId, Vpn)>) -> (TenantId, Vpn) {
    if let Some(p) = prev {
        if rng.chance(0.35) {
            return p;
        }
    }
    let t = TenantId(rng.next_below(n_tenants as u64) as u8);
    (t, Vpn(rng.next_below(48)))
}

/// [`Tlb::probe_batch`] evolves hits, misses, LRU order, and results
/// exactly as element-wise [`Tlb::probe`], across tenant counts and seeds,
/// with fills interleaved between batches.
#[test]
fn tlb_probe_batch_matches_scalar() {
    for n_tenants in TENANT_COUNTS {
        for seed in SEEDS {
            let mut rng = SimRng::new(seed);
            let mut batched = tlb(n_tenants);
            let mut scalar = tlb(n_tenants);
            let mut probes: Vec<(TenantId, Vpn)> = Vec::new();
            let mut out = Vec::new();
            let mut now = Cycle::ZERO;
            for round in 0..400 {
                now += 1;
                probes.clear();
                let mut prev = None;
                for _ in 0..1 + rng.next_below(8) {
                    let p = traffic(&mut rng, n_tenants, prev);
                    probes.push(p);
                    prev = Some(p);
                }
                batched.probe_batch(&probes, &mut out);
                for (i, &(t, v)) in probes.iter().enumerate() {
                    let want = scalar.probe(t, v);
                    assert_eq!(
                        out[i], want,
                        "{n_tenants}t seed {seed:#x} round {round} probe {i} diverged"
                    );
                }
                // After the whole batch resolves (probes never fill —
                // that's what makes same-cycle batching legal), both sides
                // fill their misses identically so LRU evolution stays
                // comparable across rounds.
                for (i, &(t, v)) in probes.iter().enumerate() {
                    if out[i].is_none() {
                        batched.fill(t, v, Ppn(v.0 + 100 * u64::from(t.0)), now);
                        scalar.fill(t, v, Ppn(v.0 + 100 * u64::from(t.0)), now);
                    }
                }
                assert_eq!(batched.hits(), scalar.hits(), "hits @ round {round}");
                assert_eq!(batched.misses(), scalar.misses(), "misses @ round {round}");
            }
        }
    }
}

/// [`Tlb::probe_run`] consumes exactly up to (and including) the first
/// miss, with every consumed probe's result and bookkeeping matching the
/// scalar replay — including the fill-and-resume loop its caller runs.
#[test]
fn tlb_probe_run_matches_scalar() {
    for n_tenants in TENANT_COUNTS {
        for seed in SEEDS {
            let mut rng = SimRng::new(seed);
            let mut batched = tlb(n_tenants);
            let mut scalar = tlb(n_tenants);
            let mut out = Vec::new();
            let mut now = Cycle::ZERO;
            for round in 0..400 {
                now += 1;
                let t = TenantId(rng.next_below(n_tenants as u64) as u8);
                let mut vpns: Vec<Vpn> = Vec::new();
                for _ in 0..1 + rng.next_below(8) {
                    let prev = vpns.last().copied();
                    vpns.push(match prev {
                        Some(p) if rng.chance(0.35) => p,
                        _ => Vpn(rng.next_below(48)),
                    });
                }
                // The caller's loop: batch the leading hit run, fill the
                // trailing miss, resume after it.
                let mut start = 0;
                while start < vpns.len() {
                    let used = batched.probe_run(t, &vpns[start..], &mut out);
                    assert!(used >= 1, "probe_run must always consume");
                    for (i, &v) in vpns[start..start + used].iter().enumerate() {
                        let want = scalar.probe(t, v);
                        assert_eq!(
                            out[i], want,
                            "{n_tenants}t seed {seed:#x} round {round} diverged"
                        );
                        if i + 1 < used {
                            assert!(want.is_some(), "probe_run ran past a miss");
                        }
                    }
                    let last = out[used - 1];
                    if last.is_none() {
                        let v = vpns[start + used - 1];
                        batched.fill(t, v, Ppn(v.0), now);
                        scalar.fill(t, v, Ppn(v.0), now);
                    } else {
                        assert_eq!(used, vpns.len() - start, "stopped without a miss");
                    }
                    start += used;
                }
                assert_eq!(batched.hits(), scalar.hits(), "hits @ round {round}");
                assert_eq!(batched.misses(), scalar.misses(), "misses @ round {round}");
            }
        }
    }
}

/// [`PwCache::probe_batch`] evolves hits, misses, and LRU order exactly as
/// element-wise [`PwCache::probe`], with walk fills interleaved.
#[test]
fn pwc_probe_batch_matches_scalar() {
    for n_tenants in TENANT_COUNTS {
        for seed in SEEDS {
            let mut rng = SimRng::new(seed);
            // Small enough to evict under the working set below.
            let mut batched = PwCache::new(8);
            let mut scalar = PwCache::new(8);
            let mut out = Vec::new();
            for round in 0..400 {
                let t = TenantId(rng.next_below(n_tenants as u64) as u8);
                let mut vpns: Vec<Vpn> = Vec::new();
                for _ in 0..1 + rng.next_below(6) {
                    let prev = vpns.last().copied();
                    vpns.push(match prev {
                        Some(p) if rng.chance(0.35) => p,
                        // Few distinct subtrees, so prefixes collide and hit.
                        _ => Vpn((rng.next_below(4) << 27) | (rng.next_below(4) << 18)),
                    });
                }
                batched.probe_batch(t, &vpns, 4, &mut out);
                for (i, &v) in vpns.iter().enumerate() {
                    let want = scalar.probe(t, v, 4);
                    assert_eq!(
                        out[i], want,
                        "{n_tenants}t seed {seed:#x} round {round} probe {i} diverged"
                    );
                }
                // Fills happen after the whole same-cycle batch resolves
                // (probes never insert), identically on both sides.
                for (i, &v) in vpns.iter().enumerate() {
                    if out[i].is_none() {
                        let nodes = [
                            PhysAddr(0x1000),
                            PhysAddr(0x2000 + v.0),
                            PhysAddr(0x3000 + v.0),
                            PhysAddr(0x4000 + v.0),
                        ];
                        batched.fill_walk(t, v, &nodes);
                        scalar.fill_walk(t, v, &nodes);
                    }
                }
                assert_eq!(batched.hits(), scalar.hits(), "hits @ round {round}");
                assert_eq!(batched.misses(), scalar.misses(), "misses @ round {round}");
                assert_eq!(batched.occupancy(), scalar.occupancy(), "occupancy");
            }
        }
    }
}

/// One walk subsystem plus the deterministic machinery it dispatches
/// against (the `Side` shape from `walk_differential.rs`).
struct Side {
    ws: WalkSubsystem,
    page_tables: Vec<PageTable>,
    frames: FrameAlloc,
    mem: MemSystem,
    obs: Observer,
}

impl Side {
    fn new(walk: &WalkConfig) -> Side {
        Side {
            ws: WalkSubsystem::new(walk.clone()),
            page_tables: (0..walk.n_tenants)
                .map(|t| PageTable::new(TenantId(t as u8), PageSize::Small4K))
                .collect(),
            frames: FrameAlloc::new(),
            mem: MemSystem::new(MemSystemConfig::default()),
            obs: Observer::off(),
        }
    }

    fn enqueue(
        &mut self,
        req: WalkRequest,
        now: Cycle,
    ) -> Result<Option<DispatchedWalk>, walksteal::vm::WalkQueueFull> {
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: None,
            obs: &mut self.obs,
        };
        self.ws.try_enqueue(req, now, &mut ctx)
    }

    fn enqueue_batch(
        &mut self,
        reqs: &[WalkRequest],
        now: Cycle,
        out: &mut Vec<Result<Option<DispatchedWalk>, walksteal::vm::WalkQueueFull>>,
    ) {
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: None,
            obs: &mut self.obs,
        };
        self.ws.try_enqueue_batch(reqs, now, &mut ctx, out);
    }

    fn complete(&mut self, d: DispatchedWalk) -> Option<DispatchedWalk> {
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: None,
            obs: &mut self.obs,
        };
        self.ws.on_walker_done(d.walker, d.done_at, &mut ctx).1
    }
}

/// Asserts everything either subsystem exposes matches, including the
/// partitioned-only views when present.
fn assert_ws_eq(a: &Side, b: &Side, at: &str) {
    assert_eq!(a.ws.queued_len(), b.ws.queued_len(), "queued_len @ {at}");
    assert_eq!(a.ws.busy_walkers(), b.ws.busy_walkers(), "busy @ {at}");
    assert_eq!(
        a.ws.busy_per_tenant(),
        b.ws.busy_per_tenant(),
        "busy_per_tenant @ {at}"
    );
    assert_eq!(a.ws.pend_walks(), b.ws.pend_walks(), "pend_walks @ {at}");
    assert_eq!(
        a.ws.walker_queue_depths(),
        b.ws.walker_queue_depths(),
        "queue depths @ {at}"
    );
    assert_eq!(
        a.ws.walker_stolen_bits(),
        b.ws.walker_stolen_bits(),
        "stolen bits @ {at}"
    );
    let (sa, sb) = (a.ws.stats(), b.ws.stats());
    assert_eq!(sa.enqueued, sb.enqueued, "enqueued @ {at}");
    assert_eq!(sa.completed, sb.completed, "completed @ {at}");
    assert_eq!(sa.stolen, sb.stolen, "stolen @ {at}");
    assert_eq!(sa.rejected, sb.rejected, "rejected @ {at}");
    assert_eq!(sa.total_latency, sb.total_latency, "latency @ {at}");
}

/// Drives a batched side ([`WalkSubsystem::try_enqueue_batch`] per burst)
/// against a scalar side (`try_enqueue` per request) through random bursty
/// multi-tenant traffic, asserting identical decisions and state at every
/// step. Returns (stolen, rejected) totals so callers can assert coverage.
fn drive_batched_vs_scalar(walk: &WalkConfig, label: &str, seed: u64, steps: usize) -> (u64, u64) {
    let mut a = Side::new(walk);
    let mut b = Side::new(walk);
    let n_tenants = walk.n_tenants;
    let mut rng = SimRng::new(seed);
    let mut now = Cycle::ZERO;
    let mut reqs: Vec<WalkRequest> = Vec::new();
    let mut batch_out = Vec::new();
    let mut outstanding: Vec<DispatchedWalk> = Vec::new();

    for step in 0..steps {
        now += 1 + rng.next_below(7);
        while let Some(&d) = outstanding.first() {
            if d.done_at > now {
                break;
            }
            outstanding.remove(0);
            let na = a.complete(d);
            let nb = b.complete(d);
            assert_eq!(na, nb, "{label} step {step}: follow-on dispatch diverged");
            if let Some(n) = na {
                let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
                outstanding.insert(pos, n);
            }
        }

        // Bursty same-cycle arrivals; solo phases drain the other tenants'
        // PEND_WALKS to zero, the only state DWS steals from (the traffic
        // shape of `walk_differential.rs`, which provokes steals and
        // queue-full rejects).
        let solo_phase = (step / 500) % 3 == 1;
        reqs.clear();
        for _ in 0..rng.next_below(5) {
            let t = if solo_phase {
                TenantId(0)
            } else {
                TenantId(rng.next_below(n_tenants as u64) as u8)
            };
            let vpn = Vpn((u64::from(t.0) << 32) | rng.next_below(50_000));
            reqs.push(WalkRequest { tenant: t, vpn });
        }
        a.enqueue_batch(&reqs, now, &mut batch_out);
        assert_eq!(batch_out.len(), reqs.len(), "{label}: result per request");
        for (i, (&req, ra)) in reqs.iter().zip(&batch_out).enumerate() {
            let rb = b.enqueue(req, now);
            assert_eq!(
                *ra, rb,
                "{label} step {step}: enqueue decision {i} diverged"
            );
            if let Ok(Some(d)) = *ra {
                let pos = outstanding.partition_point(|o| o.done_at <= d.done_at);
                outstanding.insert(pos, d);
            }
        }
        assert_ws_eq(&a, &b, &format!("{label} step {step}"));
    }

    while let Some(d) = outstanding.first().copied() {
        outstanding.remove(0);
        let na = a.complete(d);
        let nb = b.complete(d);
        assert_eq!(na, nb, "{label}: drain dispatch diverged");
        if let Some(n) = na {
            let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
            outstanding.insert(pos, n);
        }
    }
    assert_ws_eq(&a, &b, &format!("{label} terminal"));
    assert_eq!(a.ws.busy_walkers(), 0, "{label}: walks left in flight");
    let stats = a.ws.stats();
    (stats.stolen.iter().sum(), stats.rejected.iter().sum())
}

/// Walker count for an even split: Table I's 16 rounded up (the scenario
/// engine's `walkers_for_tenants`).
fn walkers_for(n: usize) -> usize {
    16usize.div_ceil(n) * n
}

/// The batched enqueue path matches scalar across every policy preset,
/// 2/3/4 tenants, and three seeds each — and under DWS the traffic
/// actually provokes steals and queue-full rejects, so the comparison
/// covered the paths that matter.
#[test]
fn walk_enqueue_batch_matches_scalar_all_presets() {
    for preset in PolicyPreset::ALL {
        for n_tenants in TENANT_COUNTS {
            let cfg = GpuConfig::default()
                .with_n_sms(8 * n_tenants)
                .with_walkers(walkers_for(n_tenants))
                .for_tenants(n_tenants)
                .with_preset(preset);
            let mut stolen = 0;
            let mut rejected = 0;
            for seed in SEEDS {
                let (s, r) = drive_batched_vs_scalar(
                    &cfg.walk,
                    &format!("{preset}/{n_tenants}t"),
                    seed,
                    4_000,
                );
                stolen += s;
                rejected += r;
            }
            if preset == PolicyPreset::Dws && n_tenants == 2 {
                assert!(stolen > 0, "traffic produced no steals under DWS");
                assert!(rejected > 0, "traffic produced no queue-full rejects");
            }
        }
    }
}

/// The three policy-arena presets run the same batched-vs-scalar walk
/// lockstep as the paper presets, with the non-vacuity each design
/// promises: MOSAIC and DE-GUARD ride DWS partitions and must provoke
/// steals, while SE-TLB is MIG-style static partitioning and must never
/// steal — across 2/3/4 tenants and three seeds each.
#[test]
fn arena_preset_walk_configs_lockstep_with_steal_nonvacuity() {
    for preset in PolicyPreset::ARENA {
        let mut stolen = 0;
        for n_tenants in TENANT_COUNTS {
            let cfg = GpuConfig::default()
                .with_n_sms(8 * n_tenants)
                .with_walkers(walkers_for(n_tenants))
                .for_tenants(n_tenants)
                .with_preset(preset);
            for seed in SEEDS {
                let (s, _) = drive_batched_vs_scalar(
                    &cfg.walk,
                    &format!("{preset}/{n_tenants}t"),
                    seed,
                    4_000,
                );
                stolen += s;
            }
        }
        if preset == PolicyPreset::SubEntryTlb {
            assert_eq!(stolen, 0, "SE-TLB static partitions must never steal");
        } else {
            assert!(stolen > 0, "{preset}: arena traffic produced no steals");
        }
    }
}

/// [`ArenaTlb::probe_batch`] evolves per-element results and hit/miss
/// statistics exactly as element-wise [`ArenaTlb::probe`], for all three
/// arena organizations across tenant counts and seeds — with fills and
/// periodic tenant shootdowns interleaved, and each design's structural
/// invariants checked on both sides every round.
#[test]
fn arena_tlb_probe_batch_matches_scalar() {
    use walksteal::vm::{ArenaTlb, ArenaTlbKind};
    let kinds = [
        ArenaTlbKind::SubEntry,
        ArenaTlbKind::Mosaic,
        ArenaTlbKind::DeadGuard,
    ];
    for kind in kinds {
        for n_tenants in TENANT_COUNTS {
            for seed in SEEDS {
                let cfg = TlbConfig {
                    sets: 4,
                    ways: 2,
                    replacement: Replacement::Lru,
                };
                let mut batched = ArenaTlb::new(kind, cfg, n_tenants, PageSize::Small4K);
                let mut scalar = ArenaTlb::new(kind, cfg, n_tenants, PageSize::Small4K);
                let mut rng = SimRng::new(seed);
                let mut probes: Vec<(TenantId, Vpn)> = Vec::new();
                let mut out = Vec::new();
                let mut now = Cycle::ZERO;
                for round in 0..400 {
                    now += 1;
                    probes.clear();
                    let mut prev = None;
                    for _ in 0..1 + rng.next_below(8) {
                        let p = traffic(&mut rng, n_tenants, prev);
                        probes.push(p);
                        prev = Some(p);
                    }
                    batched.probe_batch(&probes, &mut out);
                    for (i, &(t, v)) in probes.iter().enumerate() {
                        let want = scalar.probe(t, v);
                        assert_eq!(
                            out[i], want,
                            "{kind:?} {n_tenants}t seed {seed:#x} round {round} probe {i}"
                        );
                    }
                    for (i, &(t, v)) in probes.iter().enumerate() {
                        if out[i].is_none() {
                            // Group-consistent frames (what the Mosaic
                            // reservation allocator hands out), so coalesced
                            // large-page translations stay coherent with the
                            // base entries they replace.
                            let ppn =
                                Ppn((u64::from(t.0) << 40) | ((v.0 >> 3) << 10) | (v.0 & 7));
                            batched.fill(t, v, ppn, now);
                            scalar.fill(t, v, ppn, now);
                        }
                    }
                    if round > 0 && round % 97 == 0 {
                        let t = TenantId(rng.next_below(n_tenants as u64) as u8);
                        assert_eq!(
                            batched.invalidate_tenant(t, now),
                            scalar.invalidate_tenant(t, now),
                            "{kind:?} round {round}: shootdown count diverged"
                        );
                    }
                    assert_eq!(batched.hits(), scalar.hits(), "{kind:?} hits @ {round}");
                    assert_eq!(batched.misses(), scalar.misses(), "{kind:?} misses @ {round}");
                    batched
                        .check_invariants()
                        .unwrap_or_else(|e| panic!("batched {kind:?} round {round}: {e}"));
                    scalar
                        .check_invariants()
                        .unwrap_or_else(|e| panic!("scalar {kind:?} round {round}: {e}"));
                }
                assert!(
                    batched.hits() > 0 && batched.misses() > 0,
                    "{kind:?}: the comparison saw no real hit/miss mix"
                );
            }
        }
    }
}

/// Everything the memory system exposes, compared between sides: the
/// per-kind hit/DRAM statistics, the per-bank arbitration cursors, and the
/// per-channel DRAM cursors plus its access/queue-wait accounting.
fn assert_mem_eq(a: &MemSystem, b: &MemSystem, at: &str) {
    assert_eq!(a.stats(), b.stats(), "stats @ {at}");
    assert_eq!(a.bank_free(), b.bank_free(), "bank_free @ {at}");
    assert_eq!(
        a.dram().next_free(),
        b.dram().next_free(),
        "dram next_free @ {at}"
    );
    assert_eq!(
        a.dram().accesses(),
        b.dram().accesses(),
        "dram accesses @ {at}"
    );
    assert!(
        (a.dram_mean_queue_wait() - b.dram_mean_queue_wait()).abs() < 1e-12,
        "dram queue wait @ {at}"
    );
}

/// Memory-system hardware shapes the lockstep suite runs under. The
/// bank count deliberately differs from the channel count in both
/// directions, so requests that never collide on an L2 bank still collide
/// on a DRAM channel (and vice versa) — the cross-resource contention the
/// batch's per-bank grouping has to replay exactly.
fn mem_shapes() -> Vec<MemSystemConfig> {
    let tiny = CacheConfig { sets: 4, ways: 2 };
    vec![
        MemSystemConfig::default(),
        // 4 banks over 2 channels: cross-bank channel conflicts.
        MemSystemConfig {
            l2_banks: 4,
            l2_bank: tiny,
            l2_hit_latency: 9,
            l2_bank_occupancy: 3,
            dram: DramConfig {
                channels: 2,
                access_latency: 40,
                occupancy_cycles: 11,
            },
        },
        // 2 banks over 8 channels: bank contention dominates.
        MemSystemConfig {
            l2_banks: 2,
            l2_bank: tiny,
            l2_hit_latency: 5,
            l2_bank_occupancy: 4,
            dram: DramConfig {
                channels: 8,
                access_latency: 60,
                occupancy_cycles: 7,
            },
        },
    ]
}

/// [`MemSystem::access_batch`] locksteps against element-wise
/// [`MemSystem::access`]: per-request results, L2 contents, bank cursors,
/// DRAM channel cursors, and statistics all match after every same-cycle
/// batch, across hardware shapes, 2/3/4-tenant traffic mixes, and seeds —
/// with the contention being replayed asserted non-vacuous.
#[test]
fn mem_access_batch_matches_scalar_lockstep() {
    for (shape, cfg) in mem_shapes().into_iter().enumerate() {
        for n_tenants in TENANT_COUNTS {
            for seed in SEEDS {
                let mut batched = MemSystem::new(cfg);
                let mut scalar = MemSystem::new(cfg);
                let mut rng = SimRng::new(seed ^ (shape as u64) << 32);
                let mut now = Cycle::ZERO;
                let mut lines: Vec<LineAddr> = Vec::new();
                let mut out = Vec::new();
                let (mut l2_hits, mut drams, mut bypasses) = (0u64, 0u64, 0u64);
                for step in 0..250 {
                    now += rng.next_below(4);
                    let kind = match rng.next_below(10) {
                        0..=1 => AccessKind::PageTable,
                        2 => AccessKind::PageTableBypass,
                        _ => AccessKind::Data,
                    };
                    // A cycle's coalesced misses: each tenant's warps touch
                    // a private region (so the mix shifts with the tenant
                    // count) with heavy line reuse for L2 hits.
                    lines.clear();
                    // Mostly warp-width bursts (the scalar-replay fast
                    // path); every fourth step goes wider than GROUPED_MIN
                    // so the grouped per-bank pass locksteps too.
                    let width = if step % 4 == 0 {
                        MemSystem::GROUPED_MIN as u64 + rng.next_below(32)
                    } else {
                        1 + rng.next_below(16)
                    };
                    for _ in 0..width {
                        let t = rng.next_below(n_tenants as u64);
                        lines.push(LineAddr((t << 10) | rng.next_below(96)));
                    }
                    out.clear();
                    batched.access_batch(&lines, now, kind, &mut out);
                    for (i, &line) in lines.iter().enumerate() {
                        let want = scalar.access(line, now, kind);
                        assert_eq!(
                            out[i], want,
                            "shape {shape} {n_tenants}t seed {seed:#x} step {step} req {i}"
                        );
                        match want.level {
                            walksteal::mem::HitLevel::L2 => l2_hits += 1,
                            walksteal::mem::HitLevel::Dram => drams += 1,
                        }
                        if kind == AccessKind::PageTableBypass {
                            bypasses += 1;
                        }
                    }
                    for &line in &lines {
                        assert_eq!(
                            batched.l2_contains(line),
                            scalar.l2_contains(line),
                            "shape {shape} step {step}: L2 contents diverged"
                        );
                    }
                    assert_mem_eq(
                        &batched,
                        &scalar,
                        &format!("shape {shape} {n_tenants}t seed {seed:#x} step {step}"),
                    );
                }
                // The comparison must have covered real contention and a
                // real hit/miss/bypass mix, not an idle memory system.
                assert!(l2_hits > 0 && drams > 0 && bypasses > 0, "vacuous mix");
                assert!(
                    batched.dram_mean_queue_wait() > 0.0,
                    "shape {shape}: no DRAM channel conflicts were replayed"
                );
                assert!(
                    batched.bank_free().iter().any(|&c| c > Cycle::ZERO),
                    "shape {shape}: no L2 bank contention was replayed"
                );
            }
        }
    }
}

/// The timing-wheel fast lanes pop in exactly the order the reference
/// heap-backed queue would: random generic pushes interleave with two
/// monotone fixed-latency lanes (a zero-latency lane and a `+25` lane —
/// the simulator's `WarpStart` and L1-hit `RefDone` classes), and every
/// `(cycle, payload)` pair pops identically, ties resolving in insertion
/// order.
#[test]
fn event_queue_lanes_match_heap_reference() {
    for seed in SEEDS {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let lane_zero = wheel.add_lane();
        let lane_fixed = wheel.add_lane();
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut rng = SimRng::new(seed);
        let mut now = Cycle::ZERO;
        let mut payload = 0u64;
        for step in 0..4_000 {
            for _ in 0..rng.next_below(4) {
                let (at, lane) = match rng.next_below(3) {
                    0 => (now, Some(lane_zero)),
                    1 => (now + 25, Some(lane_fixed)),
                    _ => (now + rng.next_below(600), None),
                };
                match lane {
                    Some(l) => wheel.push_lane(l, at, payload),
                    None => wheel.push(at, payload),
                }
                heap.push(at, payload);
                payload += 1;
            }
            for _ in 0..rng.next_below(4) {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "seed {seed:#x} step {step}: pop diverged");
                if let Some((at, _)) = a {
                    // Lane pushes must stay monotone: track the popped
                    // cycle as the new "current" cycle, as the simulator
                    // does.
                    now = now.max(at);
                }
            }
            assert_eq!(wheel.len(), heap.len(), "seed {seed:#x} step {step}");
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b, "seed {seed:#x}: drain diverged");
            if a.is_none() {
                break;
            }
        }
    }
}

/// The batching legality property: permuting a same-cycle, single-tenant
/// batch of arrivals leaves every steal decision unchanged — the same
/// walkers dispatch, with the same stolen bits, and the scheduler lands in
/// the same aggregate state (PEND_WALKS, queue depths, busy counts,
/// steal/reject statistics). Only the VPN↔walker pairing (and hence each
/// walk's latency) follows the permutation, because walker choice depends
/// on scheduler state alone.
#[test]
fn single_tenant_batch_order_permutation_preserves_steal_decisions() {
    let modes = [
        StealMode::Dws,
        StealMode::DwsPlusPlus(walksteal::vm::DwsPlusPlusParams::paper_default()),
    ];
    for mode in modes {
        for seed in 0..6u64 {
            let walk = WalkConfig {
                n_walkers: 12,
                queue_entries: 24,
                n_tenants: 3,
                policy: WalkPolicyKind::Partitioned(mode.clone()),
                pwc_entries: 128,
                pwc_latency: 2,
                dispatch_overhead: 2,
                strict_pend_check: true,
            };
            let mut a = Side::new(&walk);
            let mut b = Side::new(&walk);

            // Warm both sides identically: same seed, same replayed
            // traffic, so they reach the same scheduler state — including
            // starvation phases that leave foreign walkers idle and
            // stealable.
            let mut rng = SimRng::new(0x5EED ^ seed);
            let mut now = Cycle::ZERO;
            let mut outstanding: Vec<DispatchedWalk> = Vec::new();
            for step in 0..600 {
                now += 1 + rng.next_below(7);
                while let Some(&d) = outstanding.first() {
                    if d.done_at > now {
                        break;
                    }
                    outstanding.remove(0);
                    let na = a.complete(d);
                    let nb = b.complete(d);
                    assert_eq!(na, nb, "warm-up diverged (must be deterministic)");
                    if let Some(n) = na {
                        let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
                        outstanding.insert(pos, n);
                    }
                }
                let solo = (step / 150) % 2 == 1;
                for _ in 0..rng.next_below(5) {
                    let t = if solo {
                        TenantId(0)
                    } else {
                        TenantId(rng.next_below(3) as u8)
                    };
                    let vpn = Vpn((u64::from(t.0) << 32) | rng.next_below(4_000));
                    let req = WalkRequest { tenant: t, vpn };
                    let ra = a.enqueue(req, now);
                    let rb = b.enqueue(req, now);
                    assert_eq!(ra, rb, "warm-up diverged");
                    if let Ok(Some(d)) = ra {
                        let pos = outstanding.partition_point(|o| o.done_at <= d.done_at);
                        outstanding.insert(pos, d);
                    }
                }
            }

            // The probe: one same-cycle batch from tenant 0, forward on
            // side A, a rotated permutation on side B.
            now += 1;
            let k = 3 + rng.next_below(4) as usize;
            let batch: Vec<WalkRequest> = (0..k)
                .map(|_| WalkRequest {
                    tenant: TenantId(0),
                    vpn: Vpn(rng.next_below(4_000)),
                })
                .collect();
            let rot = 1 + rng.next_below(k as u64 - 1) as usize;
            let mut permuted = batch.clone();
            permuted.rotate_left(rot);

            let decisions = |side: &mut Side, reqs: &[WalkRequest], now: Cycle| {
                let mut seq = Vec::new();
                let mut accepted = 0u32;
                for &req in reqs {
                    let r = side.enqueue(req, now);
                    if let Ok(d) = r {
                        accepted += 1;
                        seq.push(d.map(|d| {
                            let w = d.walker.index();
                            let stolen = side.ws.walker_stolen_bits().expect("partitioned")[w];
                            (w, stolen)
                        }));
                    }
                }
                (seq, accepted)
            };
            let (seq_a, acc_a) = decisions(&mut a, &batch, now);
            let (seq_b, acc_b) = decisions(&mut b, &permuted, now);
            assert_eq!(acc_a, acc_b, "{mode:?} seed {seed}: accept count diverged");
            assert_eq!(
                seq_a, seq_b,
                "{mode:?} seed {seed}: walker/steal decision sequence diverged"
            );
            assert_eq!(a.ws.pend_walks(), b.ws.pend_walks(), "{mode:?} {seed}");
            assert_eq!(
                a.ws.walker_queue_depths(),
                b.ws.walker_queue_depths(),
                "{mode:?} {seed}"
            );
            assert_eq!(
                a.ws.walker_stolen_bits(),
                b.ws.walker_stolen_bits(),
                "{mode:?} {seed}"
            );
            assert_eq!(
                a.ws.busy_per_tenant(),
                b.ws.busy_per_tenant(),
                "{mode:?} {seed}"
            );
            let (sa, sb) = (a.ws.stats(), b.ws.stats());
            assert_eq!(sa.stolen, sb.stolen, "{mode:?} {seed}: steal counts");
            assert_eq!(sa.enqueued, sb.enqueued, "{mode:?} {seed}");
            assert_eq!(sa.rejected, sb.rejected, "{mode:?} {seed}");
        }
    }
}
