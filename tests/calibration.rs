//! Workload-model calibration tests.
//!
//! The fast tests assert the *ordering* the paper's Table II classes imply
//! at a reduced scale; the `#[ignore]`d test asserts the exact MPMI bands
//! at paper scale (run with `cargo test --release -- --ignored`, ~a minute
//! of simulation).

use walksteal::multitenant::{GpuConfig, PolicyPreset, SimulationBuilder};
use walksteal::workloads::{AppId, MpmiClass};

fn standalone_mpmi(app: AppId, cfg: GpuConfig) -> f64 {
    SimulationBuilder::new()
        .config(cfg)
        .preset(PolicyPreset::Baseline)
        .tenant(app)
        .seed(42)
        .build()
        .run()
        .tenants[0]
        .mpmi
}

fn mid_scale() -> GpuConfig {
    GpuConfig::default()
        .with_n_sms(6)
        .with_warps_per_sm(12)
        .with_instructions_per_warp(2_500)
}

#[test]
fn class_representatives_are_ordered() {
    // One representative per class keeps this test fast.
    let light = standalone_mpmi(AppId::Mm, mid_scale());
    let medium = standalone_mpmi(AppId::Srad, mid_scale());
    let heavy = standalone_mpmi(AppId::Gups, mid_scale());
    assert!(
        light < medium && medium < heavy,
        "ordering violated: L={light:.1} M={medium:.1} H={heavy:.1}"
    );
    assert!(heavy > 10.0 * light, "heavy should dwarf light");
}

#[test]
fn heavy_apps_are_walk_bound() {
    // Heavy apps' IPC should be far below the compute bound; light apps
    // close to it.
    let solo = |app| {
        SimulationBuilder::new()
            .config(mid_scale())
            .tenant(app)
            .seed(1)
            .build()
            .run()
            .tenants[0]
            .ipc
    };
    let light = solo(AppId::Mm);
    let heavy = solo(AppId::Gups);
    assert!(light > 3.0 * heavy, "MM {light} vs GUPS {heavy}");
}

#[test]
#[ignore = "paper-scale calibration; run with --ignored (slow)"]
fn paper_scale_mpmi_bands_hold() {
    let cfg = GpuConfig::default().with_n_sms(15);
    for app in AppId::ALL {
        let mpmi = standalone_mpmi(app, cfg.clone());
        match app.class() {
            MpmiClass::Light => {
                assert!(mpmi < 25.0, "{app}: MPMI {mpmi:.1} not Light")
            }
            MpmiClass::Medium => assert!(
                (25.0..80.0).contains(&mpmi),
                "{app}: MPMI {mpmi:.1} not Medium"
            ),
            MpmiClass::Heavy => {
                assert!(mpmi > 80.0, "{app}: MPMI {mpmi:.1} not Heavy")
            }
        }
    }
}
