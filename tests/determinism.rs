//! The parallel experiment engine must be invisible in the output: running
//! a figure with `--jobs N` has to produce byte-identical tables and the
//! same cached results as a fully serial run. This is the regression guard
//! for the plan/execute/replay scheme in `ExpContext::run` and the
//! canonical-order merge in `parallel::run_jobs`.

use walksteal::experiments::suite::{self, ExpContext};
use walksteal::experiments::{Scale, Store};

fn serial_ctx() -> ExpContext {
    ExpContext::new(Scale::Quick, Store::in_memory())
}

fn parallel_ctx(jobs: usize) -> ExpContext {
    let mut ctx = serial_ctx();
    ctx.jobs = jobs;
    ctx
}

/// Renders a figure both ways and asserts the text output is identical.
fn assert_identical(f: impl Fn(&mut ExpContext) -> walksteal::experiments::Table) {
    let mut serial = serial_ctx();
    let serial_table = f(&mut serial);

    let mut parallel = parallel_ctx(4);
    let parallel_table = parallel.run(&f);

    assert_eq!(
        serial_table.to_string(),
        parallel_table.to_string(),
        "plain rendering differs between serial and --jobs 4"
    );
    assert_eq!(
        serial_table.to_markdown(),
        parallel_table.to_markdown(),
        "markdown rendering differs between serial and --jobs 4"
    );
    // Same evaluation matrix: every simulation ran exactly once on each side.
    assert_eq!(serial.store.misses(), parallel.store.misses());
}

#[test]
fn fig9_is_byte_identical_under_parallelism() {
    assert_identical(suite::fig9);
}

#[test]
fn tab6_is_byte_identical_under_parallelism() {
    assert_identical(suite::tab6);
}

#[test]
fn fig13_multi_tenant_is_byte_identical_under_parallelism() {
    assert_identical(suite::fig13);
}

#[test]
fn oversubscribed_jobs_are_still_deterministic() {
    // More workers than jobs exercises the idle-worker/steal paths.
    let mut serial = serial_ctx();
    let t = suite::tab5(&mut serial);

    let mut parallel = parallel_ctx(32);
    let tp = parallel.run(suite::tab5);
    assert_eq!(t.to_string(), tp.to_string());
}
