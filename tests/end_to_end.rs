//! Cross-crate integration tests: whole simulations, checked against the
//! invariants the paper's mechanisms rely on.

use walksteal::multitenant::{fairness, GpuConfig, PolicyPreset, SimResult, SimulationBuilder};
use walksteal::workloads::{AppId, WorkloadPair};

/// A small machine that still has every mechanism enabled.
fn small() -> GpuConfig {
    GpuConfig::default()
        .with_n_sms(6)
        .with_warps_per_sm(6)
        .with_instructions_per_warp(800)
}

fn run(preset: PolicyPreset, apps: &[AppId], seed: u64) -> SimResult {
    SimulationBuilder::new()
        .config(small())
        .preset(preset)
        .tenants(apps.iter().copied())
        .seed(seed)
        .build()
        .run()
}

#[test]
fn every_policy_completes_every_named_pair() {
    for (_, pair) in walksteal::workloads::named_pairs() {
        for preset in [
            PolicyPreset::Baseline,
            PolicyPreset::STlb,
            PolicyPreset::STlbPtw,
            PolicyPreset::StaticPartition,
            PolicyPreset::Dws,
            PolicyPreset::DwsPlusPlus,
            PolicyPreset::Mask,
            PolicyPreset::MaskDws,
        ] {
            let r = run(preset, &pair.apps(), 1);
            assert!(
                r.tenants.iter().all(|t| t.completed_executions >= 1),
                "{pair} under {preset:?} did not complete"
            );
            assert!(r.total_ipc() > 0.0, "{pair} under {preset:?} zero IPC");
        }
    }
}

#[test]
fn simulation_is_deterministic_across_policies() {
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlus,
    ] {
        let a = run(preset, &[AppId::Sad, AppId::Lps], 9);
        let b = run(preset, &[AppId::Sad, AppId::Lps], 9);
        assert_eq!(a, b, "{preset:?} not deterministic");
    }
}

#[test]
fn dws_beats_static_partitioning_on_asymmetric_load() {
    // The paper's core claim for stealing: static partitioning strands the
    // light tenant's walkers while the heavy tenant queues.
    let stat = run(PolicyPreset::StaticPartition, &[AppId::Gups, AppId::Mm], 2);
    let dws = run(PolicyPreset::Dws, &[AppId::Gups, AppId::Mm], 2);
    // The heavy tenant must benefit from stealing idle walkers.
    assert!(
        dws.tenants[0].ipc >= stat.tenants[0].ipc * 0.98,
        "DWS {} vs static {}",
        dws.tenants[0].ipc,
        stat.tenants[0].ipc
    );
    assert!(dws.tenants[0].stolen_fraction > 0.0, "no stealing happened");
}

#[test]
fn dws_bounds_interleaving_far_below_baseline() {
    let base = run(PolicyPreset::Baseline, &[AppId::Gups, AppId::Hs], 3);
    let dws = run(PolicyPreset::Dws, &[AppId::Gups, AppId::Hs], 3);
    // The light tenant queues behind many foreign walks at baseline...
    assert!(
        base.tenants[1].mean_interleave > 1.0,
        "baseline interleave too low: {}",
        base.tenants[1].mean_interleave
    );
    // ...and behind at most ~one under DWS (paper Table V).
    assert!(
        dws.tenants[1].mean_interleave <= 1.0,
        "DWS interleave bound violated: {}",
        dws.tenants[1].mean_interleave
    );
}

#[test]
fn light_light_pairs_are_policy_insensitive() {
    // Paper §III: LL workloads are mostly agnostic to the VM subsystem.
    let pair = WorkloadPair::new(AppId::Hs, AppId::Mm);
    let base = run(PolicyPreset::Baseline, &pair.apps(), 4).total_ipc();
    let dws = run(PolicyPreset::Dws, &pair.apps(), 4).total_ipc();
    let ratio = dws / base;
    assert!(
        (0.9..1.1).contains(&ratio),
        "LL pair moved {ratio} under DWS"
    );
}

#[test]
fn private_resources_upper_bound_throughput() {
    // S-(TLB+PTW) doubles resources and removes interference entirely; no
    // scheduling policy on baseline resources should meaningfully beat it.
    let ideal = run(PolicyPreset::STlbPtw, &[AppId::Gups, AppId::Tds], 5).total_ipc();
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlus,
    ] {
        let got = run(preset, &[AppId::Gups, AppId::Tds], 5).total_ipc();
        assert!(
            got <= ideal * 1.10,
            "{preset:?} ({got}) above the S-(TLB+PTW) bound ({ideal})"
        );
    }
}

#[test]
fn heavy_tenant_dominates_walker_share_at_baseline() {
    let r = run(PolicyPreset::Baseline, &[AppId::Gups, AppId::Mm], 6);
    assert!(
        r.tenants[0].pw_share > r.tenants[1].pw_share,
        "heavy should hold more walkers: {:?}",
        r.tenants.iter().map(|t| t.pw_share).collect::<Vec<_>>()
    );
}

#[test]
fn dws_shifts_walker_and_tlb_share_toward_light_tenant() {
    // Fig. 9: controlling walker share also controls TLB share.
    let base = run(PolicyPreset::Baseline, &[AppId::Sad, AppId::Tds], 7);
    let dws = run(PolicyPreset::Dws, &[AppId::Sad, AppId::Tds], 7);
    assert!(
        dws.tenants[1].pw_share >= base.tenants[1].pw_share * 0.9,
        "lighter tenant lost walker share under DWS"
    );
}

#[test]
fn weighted_metrics_are_in_range() {
    let r = run(PolicyPreset::Dws, &[AppId::Qtc, AppId::Jpeg], 8);
    let sa = [1.0, 1.0]; // dummy standalone: only range-checking fairness
    let f = fairness(&r, &sa);
    assert!((0.0..=1.0).contains(&f));
    for t in &r.tenants {
        assert!(t.pw_share >= 0.0 && t.pw_share <= 1.0);
        assert!(t.tlb_share >= 0.0 && t.tlb_share <= 1.0);
        assert!(t.stolen_fraction >= 0.0 && t.stolen_fraction <= 1.0);
        assert!(t.mean_walk_latency >= 0.0);
    }
}

#[test]
fn mask_policy_runs_and_throttles_fills() {
    let r = run(PolicyPreset::Mask, &[AppId::Gups, AppId::Lps], 10);
    assert!(r.tenants.iter().all(|t| t.completed_executions >= 1));
}

#[test]
fn large_pages_shorten_walks() {
    let small_pages = run(PolicyPreset::Baseline, &[AppId::Gups, AppId::Mm], 11);
    let large = SimulationBuilder::new()
        .config(small().with_page_size(walksteal::vm::PageSize::Large64K))
        .preset(PolicyPreset::Baseline)
        .tenants([AppId::Gups, AppId::Mm])
        .seed(11)
        .build()
        .run();
    // A 3-level walk has one fewer memory access: standalone-ish latency of
    // the heavy tenant should not be worse.
    assert!(
        large.tenants[0].mean_walk_latency <= small_pages.tenants[0].mean_walk_latency * 1.2,
        "64K walks slower: {} vs {}",
        large.tenants[0].mean_walk_latency,
        small_pages.tenants[0].mean_walk_latency
    );
}

#[test]
fn three_tenant_simulation_is_well_formed() {
    let r = SimulationBuilder::new()
        .n_sms(6)
        .warps_per_sm(6)
        .instructions_per_warp(600)
        .walkers(18) // divisible by 3
        .preset(PolicyPreset::Dws)
        .tenants([AppId::Gups, AppId::Tds, AppId::Mm])
        .seed(12)
        .build()
        .run();
    assert_eq!(r.tenants.len(), 3);
    assert!(r.tenants.iter().all(|t| t.completed_executions >= 1));
    let pw: f64 = r.tenants.iter().map(|t| t.pw_share).sum();
    assert!(pw <= 1.0 + 1e-9);
}

#[test]
fn relaunched_light_tenant_reports_multiple_executions() {
    let r = run(PolicyPreset::Baseline, &[AppId::Gups, AppId::Mm], 13);
    assert!(r.tenants[1].completed_executions > 1);
    assert_eq!(r.tenants[0].completed_executions, 1);
}
