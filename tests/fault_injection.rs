//! End-to-end exercises of the fault-tolerance layer: corrupt cache files
//! must be quarantined and resimulated, panicking and budget-blown jobs must
//! be isolated and retried without taking the suite down, and — the crucial
//! property — a faulted-then-recovered run must produce byte-identical
//! tables to a clean serial run, because injected faults only ever fire on a
//! job's first attempt.

use std::fs;
use std::path::{Path, PathBuf};

use walksteal::experiments::fuzz::{load_repro, run_oracles};
use walksteal::experiments::store::QUARANTINE_DIR;
use walksteal::experiments::suite::{self, ExpContext};
use walksteal::experiments::{FaultSpec, Scale, Store};
use walksteal::multitenant::RunBudget;

/// A fresh scratch cache directory unique to this test process.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "walksteal-faultinj-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch cache dir");
    dir
}

fn ctx_on_disk(dir: &Path) -> ExpContext {
    ExpContext::new(Scale::Quick, Store::on_disk(dir))
}

fn cache_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read cache dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn truncated_cache_file_is_quarantined_and_resimulated() {
    let dir = scratch_dir("truncate");

    // Populate the cache with a clean run and remember its output.
    let mut clean = ctx_on_disk(&dir);
    let reference = suite::fig9(&mut clean).to_string();
    let files = cache_files(&dir);
    assert!(!files.is_empty(), "clean run should have cached results");

    // Truncate one file mid-JSON.
    let victim = &files[0];
    let text = fs::read_to_string(victim).unwrap();
    fs::write(victim, &text[..text.len() / 2]).unwrap();

    // A fresh run must heal: quarantine the file, resimulate the key, and
    // still produce the exact same table.
    let mut healed = ctx_on_disk(&dir);
    let table = suite::fig9(&mut healed).to_string();
    assert_eq!(table, reference, "self-healed run must match the clean run");
    assert_eq!(healed.store.quarantined().len(), 1);
    assert!(
        healed.store.misses() >= 1,
        "the quarantined key must have been resimulated"
    );
    let moved = healed.store.quarantined()[0]
        .moved_to
        .as_ref()
        .expect("file should move to quarantine, not be deleted");
    assert!(moved.starts_with(dir.join(QUARANTINE_DIR)));
    assert!(moved.exists(), "quarantined file is preserved for forensics");

    // The heal is durable: a third run sees a fully valid cache.
    let mut third = ctx_on_disk(&dir);
    assert_eq!(suite::fig9(&mut third).to_string(), reference);
    assert!(third.store.quarantined().is_empty());
    assert_eq!(third.store.misses(), 0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_payload_fails_the_checksum_and_heals() {
    let dir = scratch_dir("bitflip");

    let mut clean = ctx_on_disk(&dir);
    let reference = suite::fig9(&mut clean).to_string();
    let files = cache_files(&dir);

    // Flip one digit inside the result payload, leaving the JSON
    // well-formed — only the checksum can catch this.
    let victim = &files[0];
    let text = fs::read_to_string(victim).unwrap();
    let payload_at = text
        .find("\"result\":")
        .expect("new cache files carry the checksum envelope");
    let digit_at = text[payload_at..]
        .bytes()
        .position(|b| b.is_ascii_digit())
        .map(|i| payload_at + i)
        .expect("a result payload contains digits");
    let mut bytes = text.into_bytes();
    bytes[digit_at] = b'0' + (bytes[digit_at] - b'0' + 1) % 10;
    fs::write(victim, bytes).unwrap();

    let mut healed = ctx_on_disk(&dir);
    let table = suite::fig9(&mut healed).to_string();
    assert_eq!(table, reference);
    assert_eq!(healed.store.quarantined().len(), 1);
    assert_eq!(
        healed.store.quarantined()[0].error.kind(),
        "checksum mismatch"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn faulted_fuzz_scenario_covers_batched_paths_and_recovers() {
    // The fuzzer's fault-equivalence oracle extends the injection coverage
    // to the batched enqueue entry points: the corpus scenario carries a
    // fault schedule (one panic + one budget blowout), and the oracle
    // asserts the faulted-then-recovered store matches a clean run
    // byte-for-byte while the lockstep stage drives try_enqueue_batch.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/fuzz/shared-queue-faults.json");
    let sc = load_repro(&path).expect("corpus scenario parses");
    assert!(sc.faults.is_some(), "this scenario must inject faults");

    let stats = run_oracles(&sc).unwrap_or_else(|d| panic!("scenario diverged: {d}"));
    assert!(
        stats.batched > 0,
        "the lockstep oracle must exercise batched enqueues"
    );
    assert_eq!(
        stats.fault_jobs, 3,
        "the fault-equivalence oracle runs its three-job comparison"
    );
}

#[test]
fn job_panic_mid_suite_is_isolated_and_itemized() {
    // Clean serial reference.
    let mut clean = ExpContext::new(Scale::Quick, Store::in_memory());
    let reference = suite::tab6(&mut clean).to_string();

    // Two jobs panic on their first attempt, across a 3-worker pool; the
    // bounded retry recovers both, so the output must not change.
    let mut faulted = ExpContext::new(Scale::Quick, Store::in_memory());
    faulted.jobs = 3;
    faulted.faults = Some(FaultSpec::parse("panic=2,seed=11").unwrap());
    let table = faulted.run(suite::tab6).to_string();

    assert_eq!(table, reference, "recovered run must match the clean run");
    assert_eq!(faulted.failures().len(), 2);
    for f in faulted.failures() {
        assert!(f.recovered, "injected panics recover on retry: {f:?}");
        assert_eq!(f.error.kind(), "panic");
        assert_eq!(f.attempts, 2);
    }
    assert!(!faulted.any_budget_death());
}

#[test]
fn real_budget_blowout_kills_jobs_but_not_the_suite() {
    // A genuinely unpayable budget: every attempt (and every retry) dies,
    // but the suite must still complete and render a table.
    let mut ctx = ExpContext::new(Scale::Quick, Store::in_memory());
    ctx.budget = RunBudget::unlimited().with_max_events(100);
    let table = ctx.run(suite::fig5);

    assert!(!table.to_string().is_empty());
    assert!(!ctx.failures().is_empty());
    assert!(ctx.failures().iter().all(|f| !f.recovered));
    assert!(ctx.any_budget_death());
}

#[test]
fn faulted_run_is_byte_identical_to_a_clean_serial_run() {
    // The acceptance property from the issue: corrupt cache files AND job
    // panics AND an injected budget blowout, all in one run, and the
    // per-experiment numbers still match a clean serial run exactly.
    let mut clean = ExpContext::new(Scale::Quick, Store::in_memory());
    let reference_a = suite::fig9(&mut clean).to_string();
    let reference_b = suite::tab6(&mut clean).to_string();

    let dir = scratch_dir("determinism");
    let mut warm = ctx_on_disk(&dir);
    let _ = suite::fig9(&mut warm);

    let mut spec = FaultSpec::parse("panic=1,budget=1,corrupt=2,seed=7").unwrap();
    let corrupted = spec.corrupt_cache(&dir);
    assert_eq!(corrupted.len(), 2, "two cache files should be corrupted");

    let mut faulted = ctx_on_disk(&dir);
    faulted.jobs = 4;
    faulted.faults = Some(spec);
    let table_a = faulted.run(suite::fig9).to_string();
    let table_b = faulted.run(suite::tab6).to_string();

    assert_eq!(table_a, reference_a);
    assert_eq!(table_b, reference_b);
    assert_eq!(
        faulted.store.quarantined().len(),
        2,
        "both corrupted files must be caught"
    );
    assert_eq!(
        faulted.failures().len(),
        2,
        "one injected panic + one injected budget blowout"
    );
    assert!(faulted.failures().iter().all(|f| f.recovered));
    assert!(!faulted.any_budget_death());

    let _ = fs::remove_dir_all(&dir);
}
