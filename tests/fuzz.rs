//! End-to-end exercises of the scenario fuzzer: generation must be
//! deterministic in the seed, scenarios must round-trip through the repro
//! JSON format, the checked-in corpus must replay clean against the full
//! oracle stack, a planted bug must be detected / shrunk / replayable from
//! its repro file, and the cache auditor must tell fresh results from
//! stale ones.

use std::fs;
use std::path::{Path, PathBuf};

use walksteal::experiments::fuzz::{
    load_repro, run_campaign, run_oracles, shrink, write_repro, CampaignOptions, Coverage,
    FuzzGen, FuzzScenario, Plant,
};
use walksteal::experiments::suite::{planned_jobs, verify_cache};
use walksteal::experiments::{Scale, Store};
use walksteal::multitenant::PolicyPreset;

/// A fresh scratch directory unique to this test process.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("walksteal-fuzz-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The checked-in regression corpus under `results/fuzz/`.
fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("results/fuzz")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("results/fuzz exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn same_seed_generates_the_same_scenarios() {
    let a = FuzzGen::new(42);
    let b = FuzzGen::new(42);
    let c = FuzzGen::new(43);
    let mut any_differs = false;
    for i in 0..25 {
        let sa = a.scenario(i).to_json().dump();
        let sb = b.scenario(i).to_json().dump();
        assert_eq!(sa, sb, "scenario {i} must be deterministic in the seed");
        if sa != c.scenario(i).to_json().dump() {
            any_differs = true;
        }
    }
    assert!(any_differs, "different seeds must explore different scenarios");

    // Scenario index i is independent of whether 0..i were generated first.
    let fresh = FuzzGen::new(42).scenario(17).to_json().dump();
    assert_eq!(fresh, a.scenario(17).to_json().dump());
}

#[test]
fn generated_scenarios_round_trip_through_repro_json() {
    let gen = FuzzGen::new(7);
    for i in 0..25 {
        let sc = gen.scenario(i);
        let parsed = FuzzScenario::from_json(&sc.to_json())
            .unwrap_or_else(|e| panic!("scenario {i} failed to re-parse: {e}"));
        assert_eq!(
            sc.to_json().dump(),
            parsed.to_json().dump(),
            "scenario {i} must survive a JSON round trip"
        );
        // Every generated scenario must also map to a valid configuration.
        sc.config()
            .unwrap_or_else(|e| panic!("scenario {i} has an invalid config: {e}"));
    }
}

/// The generator produces arrival/departure timelines (not just static
/// scenarios), every one of them is coherent and replays clean through the
/// oracle stack, and at least one departure actually cancels queued walks
/// — the timeline machinery is not vacuous.
#[test]
fn generated_churn_timelines_replay_clean_and_cancel() {
    let gen = FuzzGen::new(42);
    let mut with_churn = Vec::new();
    for i in 0..40 {
        let sc = gen.scenario(i);
        if !sc.churn.is_empty() {
            with_churn.push(sc);
        }
    }
    assert!(
        with_churn.len() >= 3,
        "40 draws yielded only {} churn timelines",
        with_churn.len()
    );
    let mut cancelled = 0u64;
    for sc in &with_churn {
        assert!(
            sc.churn.iter().any(|e| e.depart),
            "{}: a churn timeline without departures exercises nothing",
            sc.label
        );
        let stats = run_oracles(sc)
            .unwrap_or_else(|d| panic!("churn scenario {} diverged: {d}", sc.label));
        cancelled += stats.cancelled;
    }
    assert!(
        cancelled > 0,
        "no departure across {} churn scenarios cancelled a queued walk",
        with_churn.len()
    );
}

#[test]
fn corpus_scenarios_replay_clean() {
    let files = corpus_files();
    assert!(
        files.len() >= 3,
        "the checked-in corpus should have at least 3 scenarios, found {}",
        files.len()
    );
    for path in files {
        let sc = load_repro(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let stats = run_oracles(&sc)
            .unwrap_or_else(|d| panic!("corpus scenario {} diverged: {d}", path.display()));
        assert!(stats.sim_events > 0, "{}: simulation ran", path.display());
        assert!(
            stats.mem_refs > 0,
            "{}: the memory-batch twin compared nothing",
            path.display()
        );
    }
}

/// Memory-shape fields postdate the repro format: old files load with the
/// production defaults, the generator actually varies the shape, invalid
/// shapes are rejected at load time (not by a panic mid-campaign), and the
/// fields survive the JSON round trip.
#[test]
fn memory_shape_fields_default_vary_and_validate() {
    let sc = load_repro(&corpus_dir().join("dwspp-repartition.json")).expect("corpus loads");
    assert_eq!(
        (sc.l2_banks, sc.dram_channels, sc.dram_occupancy),
        (16, 16, 7),
        "a repro without memory fields must get the production memory system"
    );

    let gen = FuzzGen::new(42);
    let mut shapes = std::collections::BTreeSet::new();
    for i in 0..25 {
        let sc = gen.scenario(i);
        shapes.insert((sc.l2_banks, sc.dram_channels, sc.dram_occupancy));
        let parsed = FuzzScenario::from_json(&sc.to_json())
            .unwrap_or_else(|e| panic!("scenario {i} failed to re-parse: {e}"));
        assert_eq!(
            (parsed.l2_banks, parsed.dram_channels, parsed.dram_occupancy),
            (sc.l2_banks, sc.dram_channels, sc.dram_occupancy),
            "scenario {i}: memory shape must be serialized, not defaulted"
        );
    }
    assert!(
        shapes.len() > 3,
        "25 draws explored only {} memory shapes",
        shapes.len()
    );

    let mut bad = FuzzGen::new(42).scenario(0);
    bad.l2_banks = 3;
    assert!(
        FuzzScenario::from_json(&bad.to_json()).is_err(),
        "non-power-of-two bank count must be rejected"
    );
    let mut bad = FuzzGen::new(42).scenario(0);
    bad.dram_channels = 6;
    assert!(
        FuzzScenario::from_json(&bad.to_json()).is_err(),
        "non-power-of-two channel count must be rejected"
    );
    let mut bad = FuzzGen::new(42).scenario(0);
    bad.dram_occupancy = 0;
    assert!(
        FuzzScenario::from_json(&bad.to_json()).is_err(),
        "zero DRAM occupancy must be rejected"
    );
}

#[test]
fn planted_bug_is_detected_shrunk_and_replayable() {
    // A scenario that is clean as generated...
    let mut sc = FuzzGen::new(42).scenario(0);
    assert!(run_oracles(&sc).is_ok(), "scenario must be clean unplanted");

    // ...diverges once the reference side silently drops enqueues.
    sc.plant = Plant::DropReferenceEnqueues;
    let div = run_oracles(&sc).expect_err("planted bug must be detected");
    assert_eq!(div.stage, "lockstep", "the lockstep oracle catches it: {div}");

    // The shrinker must converge to a no-larger scenario that still fails.
    let (min, min_div, evals) = shrink(&sc, 120);
    assert!(evals > 0, "shrinking evaluates candidates");
    assert!(min.steps <= sc.steps);
    assert!(min.tenants.len() <= sc.tenants.len());
    assert_eq!(min_div.stage, "lockstep");
    let replayed = run_oracles(&min).expect_err("shrunk scenario must still diverge");
    assert_eq!(replayed.stage, min_div.stage);

    // The written repro round-trips and replays to the same divergence.
    let dir = scratch_dir("planted");
    let path = write_repro(&dir, &min).expect("write repro file");
    let loaded = load_repro(&path).expect("repro file parses");
    assert_eq!(loaded.to_json().dump(), min.to_json().dump());
    assert!(run_oracles(&loaded).is_err(), "repro replays the failure");
    let _ = fs::remove_dir_all(&dir);
}

/// The policy-arena presets are reachable (coverage-signal non-vacuity): a
/// 100-scenario seeded draw stream hits every arena preset, the
/// [`Coverage`] accounting sees no preset as missing, and one scenario per
/// arena preset replays clean through the full oracle stack.
#[test]
fn fuzzer_reaches_every_arena_preset() {
    let gen = FuzzGen::new(42);
    let mut coverage = Coverage::default();
    let mut first_of: std::collections::BTreeMap<&str, FuzzScenario> =
        std::collections::BTreeMap::new();
    for i in 0..100 {
        let sc = gen.scenario(i);
        coverage.record(&sc);
        if PolicyPreset::ARENA.contains(&sc.preset) {
            first_of.entry(sc.preset.label()).or_insert(sc);
        }
    }
    for p in PolicyPreset::ARENA {
        assert!(
            first_of.contains_key(p.label()),
            "100 draws never produced {p}"
        );
    }
    assert!(
        coverage.missing_presets().is_empty(),
        "coverage reports unexplored presets: {:?}",
        coverage.missing_presets()
    );
    assert_eq!(coverage.presets_hit(), PolicyPreset::ALL.len());
    assert!(
        coverage.summary().contains("14/14 presets"),
        "summary: {}",
        coverage.summary()
    );
    for (label, sc) in &first_of {
        let stats = run_oracles(sc)
            .unwrap_or_else(|d| panic!("{label} scenario {} diverged: {d}", sc.label));
        assert!(stats.sim_events > 0, "{label}: end-to-end stage must run");
    }
}

#[test]
fn small_campaign_is_clean_and_deterministic() {
    let repros = scratch_dir("campaign");
    let mut opts = CampaignOptions::new(4);
    opts.seed = 42;
    opts.corpus_dir = corpus_dir();
    opts.repro_dir = repros.clone();

    let first = run_campaign(&opts).expect("campaign runs");
    assert!(first.divergence.is_none(), "campaign must come back clean");
    assert_eq!(first.generated, 4);
    assert!(first.corpus_replayed >= 3, "corpus replays as regressions");
    assert!(!first.out_of_budget);
    assert!(first.total_steals > 0, "the campaign must exercise stealing");

    // Same seed, same campaign.
    let second = run_campaign(&opts).expect("campaign runs again");
    assert_eq!(second.generated, first.generated);
    assert_eq!(second.total_steals, first.total_steals);
    let _ = fs::remove_dir_all(&repros);
}

#[test]
fn verify_cache_tells_fresh_results_from_stale_ones() {
    let jobs = planned_jobs(Scale::Quick, 42);
    assert!(
        jobs.len() > 100,
        "the quick suite plans hundreds of simulations, got {}",
        jobs.len()
    );

    // Seed a cache with one genuine result; the audit must pass it.
    let dir = scratch_dir("verify-cache");
    let fresh = jobs[0].simulate();
    let mut store = Store::on_disk(&dir);
    store.insert(&jobs[0].key, fresh.clone());
    drop(store);

    let audit = verify_cache(Scale::Quick, &dir, usize::MAX, 1, false);
    assert_eq!(audit.planned, jobs.len());
    assert_eq!(audit.cached, 1);
    assert_eq!(audit.checked, 1);
    assert!(audit.stale.is_empty(), "a genuine result is not stale");

    // Overwrite it with a different job's result; the audit must flag it.
    let wrong = jobs[1].simulate();
    assert_ne!(
        fresh.to_json().dump(),
        wrong.to_json().dump(),
        "distinct jobs produce distinct results"
    );
    let mut store = Store::on_disk(&dir);
    store.insert(&jobs[0].key, wrong);
    drop(store);

    let audit = verify_cache(Scale::Quick, &dir, usize::MAX, 1, false);
    assert_eq!(audit.checked, 1);
    assert_eq!(audit.stale, vec![jobs[0].key.clone()]);
    let _ = fs::remove_dir_all(&dir);
}
