//! Golden snapshot of the `--quick` policy-arena suite stdout.
//!
//! `tests/golden/arena_suite.txt` is the exact text
//! `repro --quick arena_quick` prints: the quick-field leaderboard racing
//! the related-work translation designs (SE-TLB, MOSAIC, DE-GUARD) against
//! Baseline / DWS / DWS++. The test re-simulates the whole field from an
//! empty in-memory store, so any drift — a changed coalesce decision, a
//! perturbed steal, a reordered leaderboard row — fails `cargo test`
//! immediately instead of only surfacing as a diff under `results/` the
//! next time someone regenerates the cache.
//!
//! To update after an *intentional* behavior change:
//!
//! ```text
//! cargo run --release -p walksteal-experiments --bin repro -- \
//!     --quick --cache $(mktemp -d) arena_quick > tests/golden/arena_suite.txt
//! ```
//!
//! and justify the diff (especially any rank change) in the PR description.

use walksteal::experiments::arena;
use walksteal::experiments::suite::ExpContext;
use walksteal::experiments::{Scale, Store};

const GOLDEN: &str = include_str!("golden/arena_suite.txt");

#[test]
fn arena_suite_stdout_matches_golden_snapshot() {
    let mut ctx = ExpContext::new(Scale::Quick, Store::in_memory());
    ctx.jobs = 4;
    let table = ctx.run(arena::arena_quick);
    let got = format!("{table}\n");

    if got != GOLDEN {
        // Point at the first divergent line so the failure is readable
        // without diffing the blobs by hand.
        for (i, (g, w)) in got.lines().zip(GOLDEN.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "arena-suite stdout diverges from tests/golden/arena_suite.txt \
                 at line {} (see module docs for how to regenerate)",
                i + 1
            );
        }
        panic!(
            "arena-suite stdout line count changed: got {} lines, golden has {}",
            got.lines().count(),
            GOLDEN.lines().count()
        );
    }
    assert!(ctx.failures().is_empty(), "{:?}", ctx.failures());
}
