//! Golden snapshot of the `--quick` churn suite stdout.
//!
//! `tests/golden/churn_suite.txt` is the exact text
//! `repro --quick churn_light churn_heavy sens_churn` prints. The suite
//! here re-simulates every scenario from an empty in-memory store, so any
//! drift in the scenario engine — a changed arrival draw, a perturbed SLO
//! verdict, a different eviction — fails `cargo test` immediately instead
//! of only surfacing as a diff under `results/` the next time someone
//! regenerates the cache.
//!
//! To update after an *intentional* behavior change:
//!
//! ```text
//! cargo run --release --bin repro -- --quick --cache $(mktemp -d) \
//!     churn_light churn_heavy sens_churn > tests/golden/churn_suite.txt
//! ```
//!
//! and justify the diff in the PR description.

use walksteal::experiments::churn;
use walksteal::experiments::suite::ExpContext;
use walksteal::experiments::{Scale, Store};

const GOLDEN: &str = include_str!("golden/churn_suite.txt");

#[test]
fn churn_suite_stdout_matches_golden_snapshot() {
    let mut ctx = ExpContext::new(Scale::Quick, Store::in_memory());
    ctx.jobs = 4;
    let tables = [
        ctx.run(churn::churn_light),
        ctx.run(churn::churn_heavy),
        ctx.run(churn::sens_churn),
    ];
    let got: String = tables.iter().map(|t| format!("{t}\n")).collect();

    if got != GOLDEN {
        // Point at the first divergent line so the failure is readable
        // without diffing the blobs by hand.
        for (i, (g, w)) in got.lines().zip(GOLDEN.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "churn-suite stdout diverges from tests/golden/churn_suite.txt \
                 at line {} (see module docs for how to regenerate)",
                i + 1
            );
        }
        panic!(
            "churn-suite stdout line count changed: got {} lines, golden has {}",
            got.lines().count(),
            GOLDEN.lines().count()
        );
    }
}
