//! Golden snapshot of the `--quick` suite stdout.
//!
//! `tests/golden/quick_suite.txt` is the exact text `repro --quick` prints
//! (one `Display` rendering per table, newline-separated — timing and cache
//! diagnostics go to stderr, so stdout is deterministic and needs no
//! normalization). The suite here re-simulates every experiment from an
//! empty in-memory store, so any numeric drift — a changed steal decision,
//! a perturbed latency, a reordered row — fails `cargo test` immediately
//! instead of only surfacing as a diff under `results/` the next time
//! someone regenerates the cache.
//!
//! To update after an *intentional* behavior change:
//!
//! ```text
//! cargo run --release --bin repro -- --quick --cache $(mktemp -d) > tests/golden/quick_suite.txt
//! ```
//!
//! and justify the diff in the PR description.

use walksteal::experiments::suite::{self, ExpContext};
use walksteal::experiments::{Scale, Store};

const GOLDEN: &str = include_str!("golden/quick_suite.txt");

#[test]
fn quick_suite_stdout_matches_golden_snapshot() {
    let mut ctx = ExpContext::new(Scale::Quick, Store::in_memory());
    ctx.jobs = 4;
    let tables = ctx.run(suite::all);
    let got: String = tables.iter().map(|t| format!("{t}\n")).collect();

    if got != GOLDEN {
        // Point at the first divergent line so the failure is readable
        // without diffing two 450-line blobs by hand.
        for (i, (g, w)) in got.lines().zip(GOLDEN.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "quick-suite stdout diverges from tests/golden/quick_suite.txt \
                 at line {} (see module docs for how to regenerate)",
                i + 1
            );
        }
        panic!(
            "quick-suite stdout line count changed: got {} lines, golden has {}",
            got.lines().count(),
            GOLDEN.lines().count()
        );
    }
}
