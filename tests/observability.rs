//! End-to-end guarantees of the observability layer:
//!
//! * attaching tracers/metrics never perturbs simulation results — the
//!   `SimResult` JSON is byte-identical with observability on and off;
//! * a JSONL trace is a faithful record — replaying it reconstructs the
//!   simulator's own per-tenant statistics bit-for-bit;
//! * the [`SimulationBuilder`] is a drop-in for the deprecated
//!   constructor; and
//! * the CLI surface (`PolicyPreset`, `TraceFilter`) round-trips.

use walksteal::experiments::{parse_trace, replay};
use walksteal::prelude::*;

/// A small-but-nontrivial two-tenant run: page-walk-heavy GUPS against a
/// light MM, enough cycles for steals and epoch rollovers to happen.
fn builder() -> SimulationBuilder {
    SimulationBuilder::new()
        .tenants([AppId::Gups, AppId::Mm])
        .preset(PolicyPreset::Dws)
        .n_sms(4)
        .warps_per_sm(4)
        .instructions_per_warp(400)
        .seed(7)
}

/// Observability must be invisible to the simulation: the frozen
/// `SimResult` JSON with a tracer and a metrics registry attached is
/// byte-identical to a bare run.
#[test]
fn tracing_does_not_perturb_results() {
    let bare = builder().build().run().to_json().dump();
    let trace = RingTracer::unbounded();
    let metrics = SharedMetrics::new();
    let observed = builder()
        .tracer(trace.clone())
        .metrics(metrics.clone())
        .build()
        .run()
        .to_json()
        .dump();
    assert_eq!(bare, observed, "observability perturbed the simulation");
    assert!(!trace.events().is_empty(), "tracer saw nothing");
    assert!(
        metrics.counter("walks_completed", Some(0)) > 0,
        "metrics saw nothing"
    );
}

/// A JSONL trace written to disk replays to the simulator's own stats
/// bit-for-bit, and the metrics registry agrees with both.
#[test]
fn jsonl_trace_replays_to_simulator_stats() {
    let path = std::env::temp_dir().join(format!(
        "walksteal-observability-{}.jsonl",
        std::process::id()
    ));
    let metrics = SharedMetrics::new();
    let file = std::fs::File::create(&path).expect("create trace file");
    let result = builder()
        .tracer(JsonlTracer::new(std::io::BufWriter::new(file)))
        .metrics(metrics.clone())
        .build()
        .run();

    let text = std::fs::read_to_string(&path).expect("read trace back");
    std::fs::remove_file(&path).ok();
    let events = parse_trace(&text).expect("trace parses");
    let rep = replay(&events).expect("trace replays");

    assert_eq!(rep.n_tenants, 2);
    for (t, tenant) in rep.tenants.iter().enumerate() {
        let sim = &result.tenants[t];
        assert_eq!(
            tenant.pw_share.to_bits(),
            sim.pw_share.to_bits(),
            "tenant {t}: replayed pw_share diverges"
        );
        assert_eq!(
            tenant.stolen_fraction.to_bits(),
            sim.stolen_fraction.to_bits(),
            "tenant {t}: replayed stolen_fraction diverges"
        );
        assert_eq!(
            tenant.stolen,
            metrics.counter("walks_stolen", Some(t as u8)),
            "tenant {t}: trace and metrics disagree on steals"
        );
        assert_eq!(
            tenant.completed,
            metrics.counter("walks_completed", Some(t as u8)),
            "tenant {t}: trace and metrics disagree on completions"
        );
    }
    let stolen_total: u64 = rep.tenants.iter().map(|t| t.stolen).sum();
    assert!(stolen_total > 0, "expected steals under DWS for this pair");
    assert_eq!(
        metrics.counter("steal_success", None),
        stolen_total,
        "steal_success counter diverges from the trace"
    );
}

/// The builder is a faithful replacement for the deprecated
/// `Simulation::new(cfg, apps, seed)` path, for every policy preset.
#[test]
fn builder_matches_deprecated_constructor() {
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::StaticPartition,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlus,
    ] {
        let cfg = GpuConfig::default()
            .with_n_sms(2)
            .with_warps_per_sm(2)
            .with_instructions_per_warp(200)
            .for_tenants(2)
            .with_preset(preset);
        #[allow(deprecated)]
        let legacy = Simulation::new(cfg, &[AppId::Gups, AppId::Sad], 3)
            .run()
            .to_json()
            .dump();
        let built = SimulationBuilder::new()
            .n_sms(2)
            .warps_per_sm(2)
            .instructions_per_warp(200)
            .preset(preset)
            .tenants([AppId::Gups, AppId::Sad])
            .seed(3)
            .build()
            .run()
            .to_json()
            .dump();
        assert_eq!(legacy, built, "{preset:?}: builder diverges from legacy");
    }
}

/// Every preset's table label parses back to itself (`repro --policy` uses
/// exactly this round-trip).
#[test]
fn policy_preset_labels_round_trip() {
    for preset in PolicyPreset::ALL {
        let shown = preset.to_string();
        assert_eq!(shown.parse::<PolicyPreset>(), Ok(preset), "{shown}");
    }
    assert_eq!("dws++".parse::<PolicyPreset>(), Ok(PolicyPreset::DwsPlusPlus));
    assert!("no-such-policy".parse::<PolicyPreset>().is_err());
}

/// `--trace-filter` syntax: listed kinds are kept, others dropped, and the
/// run bracket (meta) always survives so a filtered trace still replays.
#[test]
fn trace_filter_round_trips() {
    let f: TraceFilter = "walk, steal".parse().expect("filter parses");
    assert!(f.contains(TraceKind::Walk));
    assert!(f.contains(TraceKind::Steal));
    assert!(f.contains(TraceKind::Meta), "meta must always survive");
    assert!(!f.contains(TraceKind::Pwc));
    assert!("walk,bogus".parse::<TraceFilter>().is_err());
}
