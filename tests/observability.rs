//! End-to-end guarantees of the observability layer:
//!
//! * attaching tracers/metrics never perturbs simulation results — the
//!   `SimResult` JSON is byte-identical with observability on and off;
//! * a JSONL trace is a faithful record — replaying it reconstructs the
//!   simulator's own per-tenant statistics bit-for-bit;
//! * a static tenant list and its degenerate scenario run identically; and
//! * the CLI surface (`PolicyPreset`, `TraceFilter`) round-trips.

use walksteal::experiments::{parse_trace, replay};
use walksteal::prelude::*;

/// A small-but-nontrivial two-tenant run: page-walk-heavy GUPS against a
/// light MM, enough cycles for steals and epoch rollovers to happen.
fn builder() -> SimulationBuilder {
    SimulationBuilder::new()
        .tenants([AppId::Gups, AppId::Mm])
        .preset(PolicyPreset::Dws)
        .n_sms(4)
        .warps_per_sm(4)
        .instructions_per_warp(400)
        .seed(7)
}

/// Observability must be invisible to the simulation: the frozen
/// `SimResult` JSON with a tracer and a metrics registry attached is
/// byte-identical to a bare run.
#[test]
fn tracing_does_not_perturb_results() {
    let bare = builder().build().run().to_json().dump();
    let trace = RingTracer::unbounded();
    let metrics = SharedMetrics::new();
    let observed = builder()
        .tracer(trace.clone())
        .metrics(metrics.clone())
        .build()
        .run()
        .to_json()
        .dump();
    assert_eq!(bare, observed, "observability perturbed the simulation");
    assert!(!trace.events().is_empty(), "tracer saw nothing");
    assert!(
        metrics.counter("walks_completed", Some(0)) > 0,
        "metrics saw nothing"
    );
}

/// A JSONL trace written to disk replays to the simulator's own stats
/// bit-for-bit, and the metrics registry agrees with both.
#[test]
fn jsonl_trace_replays_to_simulator_stats() {
    let path = std::env::temp_dir().join(format!(
        "walksteal-observability-{}.jsonl",
        std::process::id()
    ));
    let metrics = SharedMetrics::new();
    let file = std::fs::File::create(&path).expect("create trace file");
    let result = builder()
        .tracer(JsonlTracer::new(std::io::BufWriter::new(file)))
        .metrics(metrics.clone())
        .build()
        .run();

    let text = std::fs::read_to_string(&path).expect("read trace back");
    std::fs::remove_file(&path).ok();
    let events = parse_trace(&text).expect("trace parses");
    let rep = replay(&events).expect("trace replays");

    assert_eq!(rep.n_tenants, 2);
    for (t, tenant) in rep.tenants.iter().enumerate() {
        let sim = &result.tenants[t];
        assert_eq!(
            tenant.pw_share.to_bits(),
            sim.pw_share.to_bits(),
            "tenant {t}: replayed pw_share diverges"
        );
        assert_eq!(
            tenant.stolen_fraction.to_bits(),
            sim.stolen_fraction.to_bits(),
            "tenant {t}: replayed stolen_fraction diverges"
        );
        assert_eq!(
            tenant.stolen,
            metrics.counter("walks_stolen", Some(t as u8)),
            "tenant {t}: trace and metrics disagree on steals"
        );
        assert_eq!(
            tenant.completed,
            metrics.counter("walks_completed", Some(t as u8)),
            "tenant {t}: trace and metrics disagree on completions"
        );
    }
    let stolen_total: u64 = rep.tenants.iter().map(|t| t.stolen).sum();
    assert!(stolen_total > 0, "expected steals under DWS for this pair");
    assert_eq!(
        metrics.counter("steal_success", None),
        stolen_total,
        "steal_success counter diverges from the trace"
    );
}

/// A static tenant list is the degenerate scenario: routing the same
/// tenants through `ScenarioSpec::static_run` must reproduce the plain
/// builder run cycle-for-cycle, for every policy preset (the scenario
/// machinery adds only the churn report).
#[test]
fn static_scenario_matches_plain_builder() {
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::StaticPartition,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlus,
    ] {
        let base = || {
            SimulationBuilder::new()
                .n_sms(2)
                .warps_per_sm(2)
                .instructions_per_warp(200)
                .preset(preset)
                .seed(3)
        };
        let plain = base().tenants([AppId::Gups, AppId::Sad]).build().run();
        let scenario = base()
            .scenario(ScenarioSpec::static_run([AppId::Gups, AppId::Sad]))
            .build()
            .run();
        assert!(plain.churn.is_none());
        assert!(scenario.churn.is_some());
        assert_eq!(
            plain.tenants, scenario.tenants,
            "{preset:?}: scenario path diverges from the static run"
        );
        assert_eq!(plain.cycles, scenario.cycles, "{preset:?}");
        assert_eq!(plain.events, scenario.events, "{preset:?}");
    }
}

/// Every preset's table label parses back to itself (`repro --policy` uses
/// exactly this round-trip).
#[test]
fn policy_preset_labels_round_trip() {
    for preset in PolicyPreset::ALL {
        let shown = preset.to_string();
        assert_eq!(shown.parse::<PolicyPreset>(), Ok(preset), "{shown}");
    }
    assert_eq!("dws++".parse::<PolicyPreset>(), Ok(PolicyPreset::DwsPlusPlus));
    assert!("no-such-policy".parse::<PolicyPreset>().is_err());
}

/// `--trace-filter` syntax: listed kinds are kept, others dropped, and the
/// run bracket (meta) always survives so a filtered trace still replays.
#[test]
fn trace_filter_round_trips() {
    let f: TraceFilter = "walk, steal".parse().expect("filter parses");
    assert!(f.contains(TraceKind::Walk));
    assert!(f.contains(TraceKind::Steal));
    assert!(f.contains(TraceKind::Meta), "meta must always survive");
    assert!(!f.contains(TraceKind::Pwc));
    assert!("walk,bogus".parse::<TraceFilter>().is_err());
}
