//! Property-based tests (proptest) on the core data structures and the
//! invariants the walk-stealing design guarantees.

use proptest::prelude::*;

use walksteal::mem::{AccessKind, Cache, CacheConfig, MemSystem, MemSystemConfig};
use walksteal::sim::{Cycle, EventQueue, TenantId, Vpn};
use walksteal::vm::walk::WalkContext;
use walksteal::vm::{
    FrameAlloc, PageSize, PageTable, Replacement, StealMode, Tlb, TlbConfig, WalkConfig,
    WalkPolicyKind, WalkRequest, WalkSubsystem,
};

proptest! {
    /// Events pop in nondecreasing cycle order, FIFO within a cycle.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle(t), i);
        }
        let mut last: Option<(Cycle, usize)> = None;
        while let Some((at, id)) = q.pop() {
            if let Some((lat, lid)) = last {
                prop_assert!(at >= lat);
                if at == lat {
                    prop_assert!(id > lid, "FIFO violated within a cycle");
                }
            }
            last = Some((at, id));
        }
    }

    /// Walking any VPN yields a stable mapping, and re-walking agrees with
    /// `translate`.
    #[test]
    fn page_table_round_trip(vpns in proptest::collection::vec(0u64..(1 << 30), 1..50)) {
        let mut pt = PageTable::new(TenantId(0), PageSize::Small4K);
        let mut frames = FrameAlloc::new();
        for &v in &vpns {
            let first = pt.walk_path(Vpn(v), &mut frames);
            prop_assert_eq!(pt.translate(Vpn(v)), Some(first.ppn));
            let again = pt.walk_path(Vpn(v), &mut frames);
            prop_assert_eq!(first, again);
        }
    }

    /// Distinct pages of distinct tenants never share a frame.
    #[test]
    fn tenants_get_disjoint_frames(vpns in proptest::collection::vec(0u64..(1 << 20), 1..40)) {
        let mut frames = FrameAlloc::new();
        let mut a = PageTable::new(TenantId(0), PageSize::Small4K);
        let mut b = PageTable::new(TenantId(1), PageSize::Small4K);
        let mut seen = std::collections::HashSet::new();
        for &v in &vpns {
            let pa = a.walk_path(Vpn(v), &mut frames).ppn;
            let pb = b.walk_path(Vpn(v), &mut frames).ppn;
            prop_assert_ne!(pa, pb);
            seen.insert(pa);
            seen.insert(pb);
        }
        // Every distinct page got a distinct frame.
        prop_assert_eq!(seen.len(), 2 * vpns.iter().collect::<std::collections::HashSet<_>>().len());
    }

    /// A TLB probe never returns another tenant's mapping, under any
    /// interleaving of fills from two tenants.
    #[test]
    fn tlb_never_leaks_across_tenants(
        ops in proptest::collection::vec((0u8..2, 0u64..64, 0u64..1000), 1..300),
        lru in proptest::bool::ANY,
    ) {
        let replacement = if lru { Replacement::Lru } else { Replacement::Random };
        let mut tlb = Tlb::new(TlbConfig { sets: 4, ways: 2, replacement }, 2);
        let mut truth = std::collections::HashMap::new();
        for (i, &(t, v, _)) in ops.iter().enumerate() {
            let tenant = TenantId(t);
            let ppn = walksteal::sim::Ppn(i as u64 + 1000 * u64::from(t));
            tlb.fill(tenant, Vpn(v), ppn, Cycle(i as u64));
            truth.insert((t, v), ppn);
        }
        for &(t, v, _) in &ops {
            if let Some(hit) = tlb.probe(TenantId(t), Vpn(v)) {
                prop_assert_eq!(hit, truth[&(t, v)], "stale or foreign mapping");
            }
        }
    }

    /// Cache occupancy never exceeds capacity, and a probe immediately
    /// after a fill hits.
    #[test]
    fn cache_capacity_respected(lines in proptest::collection::vec(0u64..4096, 1..300)) {
        let cfg = CacheConfig { sets: 8, ways: 2 };
        let mut c = Cache::new(cfg);
        for &l in &lines {
            c.fill(walksteal::sim::LineAddr(l));
            prop_assert!(c.contains(walksteal::sim::LineAddr(l)));
            prop_assert!(c.occupancy() <= cfg.lines());
        }
    }

    /// Memory-system latency is always at least the L2 hit latency, and
    /// accesses at later times never return before earlier bank frees.
    #[test]
    fn mem_latency_floor(lines in proptest::collection::vec(0u64..512, 1..100)) {
        let cfg = MemSystemConfig::default();
        let mut mem = MemSystem::new(cfg);
        for (i, &l) in lines.iter().enumerate() {
            let a = mem.access(walksteal::sim::LineAddr(l), Cycle(i as u64 * 3), AccessKind::Data);
            prop_assert!(a.latency >= cfg.l2_hit_latency);
        }
    }

    /// Conservation: every accepted walk completes exactly once, for every
    /// policy, under arbitrary arrival patterns — and DWS walks are only
    /// ever stolen when marked so.
    #[test]
    fn walk_subsystem_conserves_walks(
        arrivals in proptest::collection::vec((0u8..2, 0u64..64, 1u64..30), 1..120),
        policy_sel in 0usize..4,
    ) {
        let policy = match policy_sel {
            0 => WalkPolicyKind::SharedQueue,
            1 => WalkPolicyKind::PrivatePools,
            2 => WalkPolicyKind::Partitioned(StealMode::None),
            _ => WalkPolicyKind::Partitioned(StealMode::Dws),
        };
        let mut ws = WalkSubsystem::new(WalkConfig {
            n_walkers: 4,
            queue_entries: 16,
            n_tenants: 2,
            policy: policy.clone(),
            pwc_entries: 16,
            pwc_latency: 2,
            dispatch_overhead: 2,
            strict_pend_check: true,
        });
        let mut pts = vec![
            PageTable::new(TenantId(0), PageSize::Small4K),
            PageTable::new(TenantId(1), PageSize::Small4K),
        ];
        let mut frames = FrameAlloc::new();
        let mut mem = MemSystem::new(MemSystemConfig::default());
        let mut scheduled: Vec<walksteal::vm::DispatchedWalk> = Vec::new();
        let mut accepted = 0u64;
        let mut completed = 0u64;
        let mut now = Cycle::ZERO;

        let drain_until = |ws: &mut WalkSubsystem,
                               scheduled: &mut Vec<walksteal::vm::DispatchedWalk>,
                               pts: &mut Vec<PageTable>,
                               frames: &mut FrameAlloc,
                               mem: &mut MemSystem,
                               t: Cycle,
                               completed: &mut u64| {
            loop {
                scheduled.sort_by_key(|d| d.done_at);
                let Some(first) = scheduled.first().copied() else { break };
                if first.done_at > t {
                    break;
                }
                scheduled.remove(0);
                let mut ctx = WalkContext {
                    page_tables: pts,
                    frames,
                    mem,
                    mask: None,
                };
                let (done, next) = ws.on_walker_done(first.walker, first.done_at, &mut ctx);
                prop_assert!(!(policy == WalkPolicyKind::Partitioned(StealMode::None) && done.stolen));
                *completed += 1;
                if let Some(n) = next {
                    scheduled.push(n);
                }
            }
            Ok(())
        };

        for &(t, v, dt) in &arrivals {
            now += dt;
            drain_until(&mut ws, &mut scheduled, &mut pts, &mut frames, &mut mem, now, &mut completed)?;
            let mut ctx = WalkContext {
                page_tables: &mut pts,
                frames: &mut frames,
                mem: &mut mem,
                mask: None,
            };
            let req = WalkRequest {
                tenant: TenantId(t),
                vpn: Vpn(u64::from(t) * 0x10_0000 + v),
            };
            if let Ok(d) = ws.try_enqueue(req, now, &mut ctx) {
                accepted += 1;
                if let Some(d) = d {
                    scheduled.push(d);
                }
            }
        }
        drain_until(
            &mut ws, &mut scheduled, &mut pts, &mut frames, &mut mem,
            Cycle(u64::MAX / 2), &mut completed,
        )?;
        prop_assert_eq!(accepted, completed, "{:?} lost or duplicated walks", policy);
        prop_assert_eq!(ws.queued_len(), 0);
        prop_assert_eq!(ws.busy_walkers(), 0);
        let stats = ws.stats();
        prop_assert_eq!(stats.completed.iter().sum::<u64>(), completed);
    }

    /// End-to-end: tiny random pairs complete under every policy, and
    /// total instructions retired equal the sum over completed executions.
    #[test]
    fn tiny_simulations_complete(seed in 0u64..50, app_a in 0usize..13, app_b in 0usize..13) {
        use walksteal::multitenant::{GpuConfig, PolicyPreset, Simulation};
        use walksteal::workloads::AppId;
        let apps = [AppId::ALL[app_a], AppId::ALL[app_b]];
        let cfg = GpuConfig::default()
            .with_n_sms(2)
            .with_warps_per_sm(2)
            .with_instructions_per_warp(150)
            .with_preset(PolicyPreset::Dws);
        let r = Simulation::new(cfg, &apps, seed).run();
        prop_assert!(r.tenants.iter().all(|t| t.completed_executions >= 1));
        for t in &r.tenants {
            prop_assert!(t.instructions > 0);
            prop_assert!(t.ipc > 0.0);
        }
    }
}
