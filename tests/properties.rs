//! Property-style tests on the core data structures and the invariants the
//! walk-stealing design guarantees.
//!
//! Each test replays one property over many randomized cases. Inputs come
//! from the repo's own deterministic [`SimRng`] (no external
//! property-testing crate), so failures reproduce exactly: the case index
//! in the assertion message pins down the failing input.

use walksteal::invariants;
use walksteal::mem::{AccessKind, Cache, CacheConfig, MemSystem, MemSystemConfig};
use walksteal::sim::{Cycle, EventQueue, LineAddr, Observer, Ppn, SimRng, TenantId, Vpn};
use walksteal::vm::walk::WalkContext;
use walksteal::vm::{
    DispatchedWalk, DwsPlusPlusParams, FrameAlloc, PageSize, PageTable, Replacement, SchedulerImpl,
    StealMode, Tlb, TlbConfig, WalkConfig, WalkPolicyKind, WalkRequest, WalkSubsystem,
};

/// Cases per property. Each case draws a fresh input of random size.
const CASES: u64 = 48;

/// A random vector of `len in 1..max_len` values below `bound`.
fn random_vec(rng: &mut SimRng, max_len: u64, bound: u64) -> Vec<u64> {
    let len = 1 + rng.next_below(max_len - 1);
    (0..len).map(|_| rng.next_below(bound)).collect()
}

/// Events pop in nondecreasing cycle order, FIFO within a cycle.
#[test]
fn event_queue_total_order() {
    let mut rng = SimRng::new(0xE0);
    for case in 0..CASES {
        let times = random_vec(&mut rng, 200, 1000);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle(t), i);
        }
        let mut last: Option<(Cycle, usize)> = None;
        while let Some((at, id)) = q.pop() {
            if let Some((lat, lid)) = last {
                assert!(at >= lat, "case {case}: order violated");
                if at == lat {
                    assert!(id > lid, "case {case}: FIFO violated within a cycle");
                }
            }
            last = Some((at, id));
        }
    }
}

/// Walking any VPN yields a stable mapping, and re-walking agrees with
/// `translate`.
#[test]
fn page_table_round_trip() {
    let mut rng = SimRng::new(0xE1);
    for case in 0..CASES {
        let vpns = random_vec(&mut rng, 50, 1 << 30);
        let mut pt = PageTable::new(TenantId(0), PageSize::Small4K);
        let mut frames = FrameAlloc::new();
        for &v in &vpns {
            let first = pt.walk_path(Vpn(v), &mut frames);
            assert_eq!(pt.translate(Vpn(v)), Some(first.ppn), "case {case}");
            let again = pt.walk_path(Vpn(v), &mut frames);
            assert_eq!(first, again, "case {case}: unstable mapping");
        }
    }
}

/// Distinct pages of distinct tenants never share a frame.
#[test]
fn tenants_get_disjoint_frames() {
    let mut rng = SimRng::new(0xE2);
    for case in 0..CASES {
        let vpns = random_vec(&mut rng, 40, 1 << 20);
        let mut frames = FrameAlloc::new();
        let mut a = PageTable::new(TenantId(0), PageSize::Small4K);
        let mut b = PageTable::new(TenantId(1), PageSize::Small4K);
        let mut seen = std::collections::HashSet::new();
        for &v in &vpns {
            let pa = a.walk_path(Vpn(v), &mut frames).ppn;
            let pb = b.walk_path(Vpn(v), &mut frames).ppn;
            assert_ne!(pa, pb, "case {case}: tenants share a frame");
            seen.insert(pa);
            seen.insert(pb);
        }
        // Every distinct page got a distinct frame.
        let distinct = vpns.iter().collect::<std::collections::HashSet<_>>().len();
        assert_eq!(seen.len(), 2 * distinct, "case {case}");
    }
}

/// A TLB probe never returns another tenant's mapping, under any
/// interleaving of fills from two tenants.
#[test]
fn tlb_never_leaks_across_tenants() {
    let mut rng = SimRng::new(0xE3);
    for case in 0..CASES {
        let n_ops = 1 + rng.next_below(299);
        let ops: Vec<(u8, u64)> = (0..n_ops)
            .map(|_| (rng.next_below(2) as u8, rng.next_below(64)))
            .collect();
        let replacement = if rng.chance(0.5) {
            Replacement::Lru
        } else {
            Replacement::Random
        };
        let mut tlb = Tlb::new(
            TlbConfig {
                sets: 4,
                ways: 2,
                replacement,
            },
            2,
        );
        let mut truth = std::collections::HashMap::new();
        for (i, &(t, v)) in ops.iter().enumerate() {
            let ppn = Ppn(i as u64 + 1000 * u64::from(t));
            tlb.fill(TenantId(t), Vpn(v), ppn, Cycle(i as u64));
            truth.insert((t, v), ppn);
        }
        for &(t, v) in &ops {
            if let Some(hit) = tlb.probe(TenantId(t), Vpn(v)) {
                assert_eq!(hit, truth[&(t, v)], "case {case}: stale or foreign mapping");
            }
        }
    }
}

/// Cache occupancy never exceeds capacity, and a probe immediately after a
/// fill hits.
#[test]
fn cache_capacity_respected() {
    let mut rng = SimRng::new(0xE4);
    for case in 0..CASES {
        let lines = random_vec(&mut rng, 300, 4096);
        let cfg = CacheConfig { sets: 8, ways: 2 };
        let mut c = Cache::new(cfg);
        for &l in &lines {
            c.fill(LineAddr(l));
            assert!(c.contains(LineAddr(l)), "case {case}");
            assert!(c.occupancy() <= cfg.lines(), "case {case}: over capacity");
        }
    }
}

/// Memory-system latency is always at least the L2 hit latency.
#[test]
fn mem_latency_floor() {
    let mut rng = SimRng::new(0xE5);
    for case in 0..CASES {
        let lines = random_vec(&mut rng, 100, 512);
        let cfg = MemSystemConfig::default();
        let mut mem = MemSystem::new(cfg);
        for (i, &l) in lines.iter().enumerate() {
            let a = mem.access(LineAddr(l), Cycle(i as u64 * 3), AccessKind::Data);
            assert!(a.latency >= cfg.l2_hit_latency, "case {case}");
        }
    }
}

/// Conservation: every accepted walk completes exactly once, for every
/// policy, under arbitrary arrival patterns — and walks are never stolen
/// when stealing is off.
#[test]
fn walk_subsystem_conserves_walks() {
    fn drain_until(
        ws: &mut WalkSubsystem,
        scheduled: &mut Vec<DispatchedWalk>,
        pts: &mut Vec<PageTable>,
        frames: &mut FrameAlloc,
        mem: &mut MemSystem,
        t: Cycle,
        completed: &mut u64,
        steal_off: bool,
    ) {
        let mut obs = Observer::off();
        loop {
            scheduled.sort_by_key(|d| d.done_at);
            let Some(first) = scheduled.first().copied() else {
                break;
            };
            if first.done_at > t {
                break;
            }
            scheduled.remove(0);
            let mut ctx = WalkContext {
                page_tables: pts,
                frames,
                mem,
                mask: None,
                obs: &mut obs,
            };
            let (done, next) = ws.on_walker_done(first.walker, first.done_at, &mut ctx);
            assert!(!(steal_off && done.stolen), "stole with stealing off");
            *completed += 1;
            if let Some(n) = next {
                scheduled.push(n);
            }
        }
    }

    let mut rng = SimRng::new(0xE6);
    for case in 0..CASES {
        let n_arrivals = 1 + rng.next_below(119);
        let arrivals: Vec<(u8, u64, u64)> = (0..n_arrivals)
            .map(|_| {
                (
                    rng.next_below(2) as u8,
                    rng.next_below(64),
                    1 + rng.next_below(29),
                )
            })
            .collect();
        let policy = match rng.next_below(4) {
            0 => WalkPolicyKind::SharedQueue,
            1 => WalkPolicyKind::PrivatePools,
            2 => WalkPolicyKind::Partitioned(StealMode::None),
            _ => WalkPolicyKind::Partitioned(StealMode::Dws),
        };
        let steal_off = policy == WalkPolicyKind::Partitioned(StealMode::None);
        let mut ws = WalkSubsystem::new(WalkConfig {
            n_walkers: 4,
            queue_entries: 16,
            n_tenants: 2,
            policy: policy.clone(),
            pwc_entries: 16,
            pwc_latency: 2,
            dispatch_overhead: 2,
            strict_pend_check: true,
        });
        let mut pts = vec![
            PageTable::new(TenantId(0), PageSize::Small4K),
            PageTable::new(TenantId(1), PageSize::Small4K),
        ];
        let mut frames = FrameAlloc::new();
        let mut mem = MemSystem::new(MemSystemConfig::default());
        let mut scheduled: Vec<DispatchedWalk> = Vec::new();
        let mut obs = Observer::off();
        let mut accepted = 0u64;
        let mut completed = 0u64;
        let mut now = Cycle::ZERO;

        for &(t, v, dt) in &arrivals {
            now += dt;
            drain_until(
                &mut ws,
                &mut scheduled,
                &mut pts,
                &mut frames,
                &mut mem,
                now,
                &mut completed,
                steal_off,
            );
            let mut ctx = WalkContext {
                page_tables: &mut pts,
                frames: &mut frames,
                mem: &mut mem,
                mask: None,
                obs: &mut obs,
            };
            let req = WalkRequest {
                tenant: TenantId(t),
                vpn: Vpn(u64::from(t) * 0x10_0000 + v),
            };
            if let Ok(d) = ws.try_enqueue(req, now, &mut ctx) {
                accepted += 1;
                if let Some(d) = d {
                    scheduled.push(d);
                }
            }
        }
        drain_until(
            &mut ws,
            &mut scheduled,
            &mut pts,
            &mut frames,
            &mut mem,
            Cycle(u64::MAX / 2),
            &mut completed,
            steal_off,
        );
        assert_eq!(
            accepted, completed,
            "case {case}: {policy:?} lost or duplicated walks"
        );
        assert_eq!(ws.queued_len(), 0, "case {case}");
        assert_eq!(ws.busy_walkers(), 0, "case {case}");
        let stats = ws.stats();
        assert_eq!(stats.completed.iter().sum::<u64>(), completed, "case {case}");
    }
}

/// One partitioned-scheduler instance under invariant scrutiny: the
/// subsystem plus the deterministic machinery it dispatches against.
struct SchedSide {
    ws: WalkSubsystem,
    page_tables: Vec<PageTable>,
    frames: FrameAlloc,
    mem: MemSystem,
    obs: Observer,
    /// Whether [`complete`](Self::complete) asserts the FWA
    /// no-consecutive-steal rule. The rule reads the per-walker stolen
    /// bits against walker ownership, so — like the ownership
    /// decomposition in `check_scheduler` — it does not survive a mid-run
    /// repartition; churn drivers turn it off.
    steal_rule: bool,
}

impl SchedSide {
    fn new(cfg: &WalkConfig, imp: SchedulerImpl) -> SchedSide {
        SchedSide {
            ws: WalkSubsystem::with_scheduler_impl(cfg.clone(), imp),
            page_tables: (0..cfg.n_tenants)
                .map(|t| PageTable::new(TenantId(t as u8), PageSize::Small4K))
                .collect(),
            frames: FrameAlloc::new(),
            mem: MemSystem::new(MemSystemConfig::default()),
            obs: Observer::off(),
            steal_rule: true,
        }
    }

    fn enqueue(
        &mut self,
        req: WalkRequest,
        now: Cycle,
    ) -> Result<Option<DispatchedWalk>, walksteal::vm::WalkQueueFull> {
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: None,
            obs: &mut self.obs,
        };
        self.ws.try_enqueue(req, now, &mut ctx)
    }

    /// A whole cycle's arrivals through the batched entry point the
    /// simulator's hot loop uses.
    fn enqueue_batch(
        &mut self,
        reqs: &[WalkRequest],
        now: Cycle,
        out: &mut Vec<Result<Option<DispatchedWalk>, walksteal::vm::WalkQueueFull>>,
    ) {
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: None,
            obs: &mut self.obs,
        };
        self.ws.try_enqueue_batch(reqs, now, &mut ctx, out);
    }

    fn complete(&mut self, d: DispatchedWalk) -> Option<DispatchedWalk> {
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: None,
            obs: &mut self.obs,
        };
        let pre_depths = self.ws.walker_queue_depths().expect("partitioned");
        let pre_stolen = self.ws.walker_stolen_bits().expect("partitioned");
        let (_, next) = self.ws.on_walker_done(d.walker, d.done_at, &mut ctx);
        if let Some(n) = next {
            if self.steal_rule {
                // The FWA no-consecutive-steals rule, shared with the
                // fuzzer through the library invariants module.
                invariants::check_no_consecutive_steal(
                    &self.ws,
                    &pre_depths,
                    &pre_stolen,
                    n.walker.index(),
                )
                .unwrap_or_else(|e| panic!("{e}"));
            }
        }
        next
    }

    /// Checks the conservation and occupancy invariants against the
    /// scheduler's own PEND_WALKS / queue-depth / ownership views, through
    /// the shared [`walksteal::invariants`] implementation.
    fn check_invariants(&self, attempts: u64, at: &str) {
        // This suite only constructs partitioned schedulers; make sure the
        // library checks are exercising the per-tenant views, not silently
        // taking the non-partitioned early-out.
        assert!(self.ws.pend_walks().is_some(), "{at}: expected partitioned");
        invariants::check_scheduler(&self.ws, attempts, at).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// Drives both scheduler implementations through lockstep random N-tenant
/// traffic — the optimized side through the batched enqueue entry point,
/// the reference side element-wise — checking the partitioned-scheduler
/// invariants on both sides at every step and that the two sides'
/// inspection views never diverge.
/// Returns total steals, so callers can assert the run exercised stealing.
fn drive_invariants(n_tenants: usize, mode: StealMode, seed: u64, steps: usize) -> u64 {
    let cfg = WalkConfig {
        n_walkers: 12, // divisible by 2, 3, and 4 tenants
        // Shallow queues: walks are slow (multi-level, memory-bound), so a
        // starved tenant must not sit on a deep backlog or it would never
        // reach PEND_WALKS == 0 — the only state DWS steals from — within
        // a solo phase.
        queue_entries: 24,
        n_tenants,
        policy: WalkPolicyKind::Partitioned(mode),
        pwc_entries: 128,
        pwc_latency: 2,
        dispatch_overhead: 2,
        strict_pend_check: true,
    };
    let mut a = SchedSide::new(&cfg, SchedulerImpl::Optimized);
    let mut b = SchedSide::new(&cfg, SchedulerImpl::Reference);
    let mut rng = SimRng::new(seed);
    let mut now = Cycle::ZERO;
    let mut attempts = 0u64;
    let mut outstanding: Vec<DispatchedWalk> = Vec::new();
    let mut burst: Vec<WalkRequest> = Vec::new();
    let mut batch_out = Vec::new();

    for step in 0..steps {
        now += 1 + rng.next_below(7);
        while let Some(&d) = outstanding.first() {
            if d.done_at > now {
                break;
            }
            outstanding.remove(0);
            let na = a.complete(d);
            let nb = b.complete(d);
            assert_eq!(na, nb, "step {step}: follow-on dispatch diverged");
            if let Some(n) = na {
                let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
                outstanding.insert(pos, n);
            }
        }

        // Solo phases starve every tenant but one so PEND_WALKS of the
        // others reaches zero while queues elsewhere are loaded — the only
        // state DWS steals from.
        let solo_phase = (step / 400) % 2 == 1;
        burst.clear();
        for _ in 0..rng.next_below(5) {
            let t = if solo_phase {
                TenantId(0)
            } else {
                TenantId(rng.next_below(n_tenants as u64) as u8)
            };
            // A small working set keeps the PWC hot so walks complete fast
            // enough for solo phases to actually drain the idle tenants.
            let vpn = Vpn((u64::from(t.0) << 32) | rng.next_below(4_000));
            burst.push(WalkRequest { tenant: t, vpn });
        }
        attempts += burst.len() as u64;
        // The optimized side takes the cycle's arrivals through the
        // batched entry point the simulator's hot loop uses; the reference
        // side replays them element-wise. The invariants below must hold
        // — and the two views agree — either way.
        a.enqueue_batch(&burst, now, &mut batch_out);
        for (i, (&req, ra)) in burst.iter().zip(&batch_out).enumerate() {
            let rb = b.enqueue(req, now);
            assert_eq!(*ra, rb, "step {step}: enqueue decision {i} diverged");
            if let Ok(Some(d)) = *ra {
                let pos = outstanding.partition_point(|o| o.done_at <= d.done_at);
                outstanding.insert(pos, d);
            }
        }

        a.check_invariants(attempts, &format!("optimized step {step}"));
        b.check_invariants(attempts, &format!("reference step {step}"));
        invariants::check_views_agree(&a.ws, &b.ws, &format!("step {step}"))
            .unwrap_or_else(|e| panic!("{e}"));
    }

    // Drain, then the terminal state must conserve everything.
    while let Some(d) = outstanding.first().copied() {
        outstanding.remove(0);
        let na = a.complete(d);
        let nb = b.complete(d);
        assert_eq!(na, nb, "drain dispatch diverged");
        if let Some(n) = na {
            let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
            outstanding.insert(pos, n);
        }
    }
    for side in [&a, &b] {
        invariants::check_drained(&side.ws, attempts, "terminal").unwrap_or_else(|e| panic!("{e}"));
    }
    a.ws.stats().stolen.iter().sum()
}

/// The partitioned scheduler's core invariants (per-tenant walk
/// conservation through PEND_WALKS, attempt accounting, queue-occupancy
/// agreement, no consecutive steals from a backlogged walker) hold at every
/// step, for 2/3/4 tenants under every steal mode, on both the optimized
/// and the reference implementation in lockstep.
#[test]
fn scheduler_invariants_hold_for_n_tenants() {
    for n_tenants in [2usize, 3, 4] {
        for (mode, label) in [
            (StealMode::None, "static"),
            (StealMode::Dws, "dws"),
            (
                StealMode::DwsPlusPlus(DwsPlusPlusParams::paper_default()),
                "dws++",
            ),
        ] {
            let mut stolen = 0;
            for seed in [0xA1u64, 0xB2, 0xC3] {
                stolen += drive_invariants(n_tenants, mode.clone(), seed, 2_000);
            }
            if label == "static" {
                assert_eq!(stolen, 0, "static partitioning must never steal");
            } else {
                // The no-consecutive-steal check is vacuous unless the
                // traffic actually provoked steals.
                assert!(
                    stolen > 0,
                    "{label} at {n_tenants} tenants produced no steals"
                );
            }
        }
    }
}

/// Drives both scheduler implementations through lockstep traffic UNDER
/// CHURN: a random arrival/departure timeline repartitions the walkers and
/// cancels the departing tenant's queued walks mid-run, on both sides at
/// the same step. Per-tenant conservation is checked through the
/// attach/detach-safe [`invariants::check_accounting`] form (the ownership
/// decomposition is transiently void while a departed tenant's walks drain
/// from re-owned walkers), and the two sides' views must never diverge.
/// Returns (steals, cancelled walks) so callers can assert non-vacuity.
fn drive_churn(n_tenants: usize, mode: StealMode, seed: u64, steps: usize) -> (u64, u64) {
    let cfg = WalkConfig {
        n_walkers: 12, // divisible by every active-tenant count 1..=4
        queue_entries: 24,
        n_tenants,
        policy: WalkPolicyKind::Partitioned(mode),
        pwc_entries: 128,
        pwc_latency: 2,
        dispatch_overhead: 2,
        strict_pend_check: true,
    };
    let mut a = SchedSide::new(&cfg, SchedulerImpl::Optimized);
    let mut b = SchedSide::new(&cfg, SchedulerImpl::Reference);
    // The no-consecutive-steal rule reads stolen bits against ownership,
    // which repartitions invalidate; conservation and view agreement are
    // the churn-safe properties this driver asserts.
    a.steal_rule = false;
    b.steal_rule = false;
    let mut rng = SimRng::new(seed);
    let mut now = Cycle::ZERO;
    let mut attempts = 0u64;
    let mut cancelled = 0u64;
    let mut outstanding: Vec<DispatchedWalk> = Vec::new();
    let mut burst: Vec<WalkRequest> = Vec::new();
    let mut batch_out = Vec::new();
    // Tenant 0 is pinned resident (the partition must never go empty);
    // the rest arrive and depart on the timeline below.
    let mut active = vec![true; n_tenants];

    for step in 0..steps {
        now += 1 + rng.next_below(7);
        while let Some(&d) = outstanding.first() {
            if d.done_at > now {
                break;
            }
            outstanding.remove(0);
            let na = a.complete(d);
            let nb = b.complete(d);
            assert_eq!(na, nb, "step {step}: follow-on dispatch diverged");
            if let Some(n) = na {
                let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
                outstanding.insert(pos, n);
            }
        }

        // Churn point: every ~250 steps one non-pinned tenant flips
        // between resident and departed. A departure cancels its queued
        // walks (the shootdown the simulator performs) and both events
        // repartition the walkers among the residents — on both sides.
        if step > 0 && step % 250 == 0 {
            let t = 1 + rng.next_below(n_tenants as u64 - 1) as usize;
            active[t] = !active[t];
            if !active[t] {
                let ca = a.ws.cancel_tenant(TenantId(t as u8));
                let cb = b.ws.cancel_tenant(TenantId(t as u8));
                assert_eq!(ca, cb, "step {step}: cancel count diverged");
                cancelled += ca;
            }
            a.ws.set_active_tenants(&active);
            b.ws.set_active_tenants(&active);
        }

        // Solo phases starve every resident but tenant 0 so the others'
        // PEND_WALKS reach zero — the only state DWS steals from.
        let solo_phase = (step / 400) % 2 == 1;
        burst.clear();
        for _ in 0..rng.next_below(5) {
            let t = if solo_phase {
                TenantId(0)
            } else {
                // Residents only: the GPU never issues for a departed app.
                let residents: Vec<usize> =
                    (0..n_tenants).filter(|&t| active[t]).collect();
                TenantId(residents[rng.next_below(residents.len() as u64) as usize] as u8)
            };
            let vpn = Vpn((u64::from(t.0) << 32) | rng.next_below(4_000));
            burst.push(WalkRequest { tenant: t, vpn });
        }
        attempts += burst.len() as u64;
        a.enqueue_batch(&burst, now, &mut batch_out);
        for (i, (&req, ra)) in burst.iter().zip(&batch_out).enumerate() {
            let rb = b.enqueue(req, now);
            assert_eq!(*ra, rb, "step {step}: enqueue decision {i} diverged");
            if let Ok(Some(d)) = *ra {
                let pos = outstanding.partition_point(|o| o.done_at <= d.done_at);
                outstanding.insert(pos, d);
            }
        }

        for (side, ws) in [("optimized", &a.ws), ("reference", &b.ws)] {
            invariants::check_accounting(ws, attempts, &format!("{side} step {step}"))
                .unwrap_or_else(|e| panic!("{e}"));
        }
        invariants::check_views_agree(&a.ws, &b.ws, &format!("step {step}"))
            .unwrap_or_else(|e| panic!("{e}"));
    }

    while let Some(d) = outstanding.first().copied() {
        outstanding.remove(0);
        let na = a.complete(d);
        let nb = b.complete(d);
        assert_eq!(na, nb, "drain dispatch diverged");
        if let Some(n) = na {
            let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
            outstanding.insert(pos, n);
        }
    }
    for side in [&a, &b] {
        invariants::check_drained(&side.ws, attempts, "terminal").unwrap_or_else(|e| panic!("{e}"));
    }
    (a.ws.stats().stolen.iter().sum(), cancelled)
}

/// The scheduler invariants survive tenant attach/detach: lockstep
/// optimized-vs-reference runs over random arrival/departure timelines,
/// for 3 and 4 tenants under DWS and DWS++, with both stealing and
/// mid-run cancellations provably exercised.
#[test]
fn scheduler_invariants_hold_under_churn() {
    for n_tenants in [3usize, 4] {
        for (mode, label) in [
            (StealMode::Dws, "dws"),
            (
                StealMode::DwsPlusPlus(DwsPlusPlusParams::paper_default()),
                "dws++",
            ),
        ] {
            let mut stolen = 0;
            let mut cancelled = 0;
            for seed in [0xD1u64, 0xD2, 0xD3] {
                let (s, c) = drive_churn(n_tenants, mode.clone(), seed, 2_000);
                stolen += s;
                cancelled += c;
            }
            assert!(
                stolen > 0,
                "{label} at {n_tenants} tenants churned without steals"
            );
            assert!(
                cancelled > 0,
                "{label} at {n_tenants} tenants churned without cancellations"
            );
        }
    }
}

/// The arena presets' walk configurations hold every scheduler invariant
/// in optimized-vs-reference lockstep — conservation and
/// [`invariants::check_scheduler`] through [`drive_invariants`] on static
/// traffic, and the attach/detach-safe [`invariants::check_accounting`]
/// through [`drive_churn`] on arrival/departure timelines — with the steal
/// behavior each design promises: SE-TLB's MIG-style static partitions
/// never steal, MOSAIC and DE-GUARD ride DWS and provably do.
#[test]
fn arena_preset_walk_configs_hold_invariants() {
    use walksteal::multitenant::{GpuConfig, PolicyPreset};

    for preset in PolicyPreset::ARENA {
        let cfg = GpuConfig::default()
            .with_walkers(12)
            .for_tenants(3)
            .with_preset(preset);
        let WalkPolicyKind::Partitioned(mode) = cfg.walk.policy.clone() else {
            panic!("{preset}: arena presets must partition their walkers");
        };
        let mut stolen = 0;
        for n_tenants in [2usize, 3, 4] {
            for seed in [0xA7u64, 0xB8] {
                stolen += drive_invariants(n_tenants, mode.clone(), seed, 2_000);
            }
        }
        let mut cancelled = 0;
        for seed in [0xD7u64, 0xD8] {
            let (s, c) = drive_churn(3, mode.clone(), seed, 2_000);
            stolen += s;
            cancelled += c;
        }
        assert!(cancelled > 0, "{preset}: churn never cancelled a walk");
        if preset == PolicyPreset::SubEntryTlb {
            assert_eq!(stolen, 0, "SE-TLB static partitions must never steal");
        } else {
            assert!(stolen > 0, "{preset}: traffic produced no steals");
        }
    }
}

/// Mosaic consistency property: under reservation-grouped frames a
/// [`MosaicTlb`](walksteal::vm::MosaicTlb) probe never contradicts the
/// page table — every hit, from a base entry or a coalesced large entry
/// (including pages of the group the TLB never saw filled), returns
/// exactly the frame the reservation allocator mapped. Coalescing and
/// splintering both provably fire, and the no-double-mapping structural
/// invariant holds after every operation.
#[test]
fn mosaic_tlb_agrees_with_reserved_page_table() {
    use walksteal::vm::{MosaicTlb, MOSAIC_GROUP};

    let mut rng = SimRng::new(0xE8);
    let (mut coalesces, mut splinters, mut large_hits) = (0u64, 0u64, 0u64);
    for case in 0..CASES {
        let mut tlb = MosaicTlb::new(
            TlbConfig {
                sets: 4,
                ways: 2,
                replacement: Replacement::Lru,
            },
            2,
            PageSize::Small4K,
        );
        let mut frames = FrameAlloc::new();
        let mut pts = [
            PageTable::with_reservation(TenantId(0), PageSize::Small4K, MOSAIC_GROUP),
            PageTable::with_reservation(TenantId(1), PageSize::Small4K, MOSAIC_GROUP),
        ];
        let n_ops = 60 + rng.next_below(140);
        let mut now = Cycle::ZERO;
        for op in 0..n_ops {
            now += 1;
            let t = rng.next_below(2) as usize;
            // Half the ops sweep a whole group page-by-page (the dense
            // touch pattern that trips the coalesce threshold; the wide
            // group range overflows the large array so victims splinter),
            // half probe a hot region served from earlier coalesces.
            let vpns: Vec<Vpn> = if rng.chance(0.5) {
                let group = rng.next_below(256) * MOSAIC_GROUP;
                (0..MOSAIC_GROUP).map(|i| Vpn(group + i)).collect()
            } else {
                vec![Vpn(rng.next_below(64))]
            };
            for v in vpns {
                let truth = pts[t].walk_path(v, &mut frames).ppn;
                match tlb.probe(TenantId(t as u8), v) {
                    Some(hit) => assert_eq!(
                        hit, truth,
                        "case {case} op {op}: wrong translation for {v:?}"
                    ),
                    None => tlb.fill(TenantId(t as u8), v, truth, now),
                }
            }
            if rng.chance(0.02) {
                tlb.invalidate_tenant(TenantId(t as u8), now);
            }
            tlb.check_invariants()
                .unwrap_or_else(|e| panic!("case {case} op {op}: {e}"));
        }
        coalesces += tlb.coalesces();
        splinters += tlb.splinters();
        large_hits += tlb.large_hits();
    }
    assert!(coalesces > 0, "no group ever coalesced");
    assert!(splinters > 0, "no large entry was ever splintered back");
    assert!(large_hits > 0, "no probe was ever served by a large entry");
}

/// Sub-entry isolation property: under random multi-tenant streams a
/// [`SubEntryTlb`](walksteal::vm::SubEntryTlb) probe never returns a
/// foreign or stale mapping, the sub-entries of one physical entry never
/// span tenants unless the entry is flagged shared (checked structurally
/// after every operation), and cross-tenant sharing provably occurs
/// somewhere in the suite.
#[test]
fn sub_entry_tlb_isolates_tenants() {
    use walksteal::vm::SubEntryTlb;

    let mut rng = SimRng::new(0xE9);
    let mut shared_fills = 0u64;
    for case in 0..CASES {
        let n_tenants = 2 + rng.next_below(3) as usize;
        let mut tlb = SubEntryTlb::new(
            TlbConfig {
                sets: 4,
                ways: 2,
                replacement: Replacement::Lru,
            },
            n_tenants,
        );
        let mut truth = std::collections::HashMap::new();
        let n_ops = 1 + rng.next_below(299);
        for op in 0..n_ops {
            let t = rng.next_below(n_tenants as u64) as u8;
            let v = rng.next_below(64);
            let now = Cycle(op);
            match tlb.probe(TenantId(t), Vpn(v)) {
                Some(hit) => assert_eq!(
                    Some(&hit),
                    truth.get(&(t, v)),
                    "case {case} op {op}: foreign or stale mapping"
                ),
                None => {
                    let ppn = Ppn(v + 1 + 1000 * u64::from(t));
                    tlb.fill(TenantId(t), Vpn(v), ppn, now);
                    truth.insert((t, v), ppn);
                }
            }
            if rng.chance(0.01) {
                tlb.invalidate_tenant(TenantId(t), now);
                truth.retain(|&(tt, _), _| tt != t);
            }
            tlb.check_invariants()
                .unwrap_or_else(|e| panic!("case {case} op {op}: {e}"));
        }
        shared_fills += tlb.shared_fills();
    }
    assert!(shared_fills > 0, "no cross-tenant sub-entry sharing occurred");
}

/// Dead-entry-guard safety property: the predictor only ever *bypasses*
/// fills — a [`DeadGuardTlb`](walksteal::vm::DeadGuardTlb) probe hit is
/// always the correct mapping, never stale or foreign — and under a
/// stream-plus-hot-set mix it provably both learns dead evictions and
/// bypasses fills.
#[test]
fn dead_guard_tlb_never_serves_stale_mappings() {
    use walksteal::vm::DeadGuardTlb;

    let mut rng = SimRng::new(0xEA);
    let (mut bypasses, mut dead) = (0u64, 0u64);
    for case in 0..CASES {
        let mut tlb = DeadGuardTlb::new(
            TlbConfig {
                sets: 4,
                ways: 2,
                replacement: Replacement::Lru,
            },
            2,
        );
        let mut stream_next = 1_000u64;
        let n_ops = 100 + rng.next_below(300);
        for op in 0..n_ops {
            let t = rng.next_below(2) as u8;
            // A small hot set that genuinely reuses, against a strided
            // stream that never does — the mix the dead-entry predictor
            // (arXiv 2606.00486) is built to separate.
            let v = if rng.chance(0.6) {
                rng.next_below(8)
            } else {
                stream_next += 1;
                stream_next
            };
            let now = Cycle(op);
            let want = Ppn(v + 1 + 1000 * u64::from(t));
            match tlb.probe(TenantId(t), Vpn(v)) {
                Some(hit) => assert_eq!(hit, want, "case {case} op {op}: stale or foreign"),
                None => tlb.fill(TenantId(t), Vpn(v), want, now),
            }
        }
        bypasses += tlb.bypasses();
        dead += tlb.dead_evictions();
    }
    assert!(dead > 0, "the predictor never observed a dead eviction");
    assert!(bypasses > 0, "the predictor never bypassed a fill");
}

/// End-to-end churn: heavy arrival/departure timelines under a tight SLO
/// run to completion under DWS and DWS++, the controller provably evicts
/// and throttles somewhere in the suite, and every churn report is
/// internally consistent (departure after arrival, compliance from counted
/// checks, lifetime bounded by the run).
#[test]
fn churn_scenarios_evict_and_steal() {
    use walksteal::experiments::suite::walkers_for_tenants;
    use walksteal::experiments::{scenario_from_plan, ChurnKind, Scale};
    use walksteal::multitenant::{PolicyPreset, SimulationBuilder};

    let scale = Scale::Quick;
    let mut evictions = 0u64;
    let mut throttles = 0u64;
    let mut stolen = false;
    for preset in [PolicyPreset::Dws, PolicyPreset::DwsPlusPlus] {
        for seed in [42u64, 43, 44] {
            let plan = ChurnKind::Heavy.process().generate(seed);
            let spec = scenario_from_plan(&plan, Some(ChurnKind::Heavy.slo()));
            let n = plan.n_tenants();
            let cfg = scale
                .base_config()
                .with_n_sms(scale.sms_per_tenant(n) * n)
                .with_walkers(walkers_for_tenants(n))
                .for_tenants(n)
                .with_preset(preset);
            let r = SimulationBuilder::new()
                .config(cfg)
                .scenario(spec)
                .seed(seed)
                .build()
                .run();
            let report = r.churn.expect("scenario runs carry a churn report");
            evictions += report.evictions;
            throttles += report.throttles;
            stolen |= r.tenants.iter().any(|t| t.stolen_fraction > 0.0);
            for (t, ch) in report.tenants.iter().enumerate() {
                if let (Some(arr), Some(dep)) = (ch.arrived, ch.departed) {
                    assert!(dep > arr, "tenant {t} departed before arriving");
                }
                assert!(ch.slo_met <= ch.slo_checks, "tenant {t}");
                assert!(ch.lifetime_cycles <= r.cycles, "tenant {t}");
            }
        }
    }
    assert!(evictions > 0, "heavy churn under a 900-cycle p99 never evicted");
    assert!(throttles > 0, "heavy churn never throttled an aggressor");
    assert!(stolen, "DWS under churn never stole a walk");
}

/// End-to-end: tiny random pairs complete under every policy, and every
/// tenant retires instructions at a positive rate.
#[test]
fn tiny_simulations_complete() {
    use walksteal::multitenant::{PolicyPreset, SimulationBuilder};
    use walksteal::workloads::AppId;

    let mut rng = SimRng::new(0xE7);
    for case in 0..16 {
        let seed = rng.next_below(50);
        let apps = [
            AppId::ALL[rng.next_below(13) as usize],
            AppId::ALL[rng.next_below(13) as usize],
        ];
        let r = SimulationBuilder::new()
            .n_sms(2)
            .warps_per_sm(2)
            .instructions_per_warp(150)
            .preset(PolicyPreset::Dws)
            .tenants(apps)
            .seed(seed)
            .build()
            .run();
        assert!(
            r.tenants.iter().all(|t| t.completed_executions >= 1),
            "case {case}: {apps:?} did not complete"
        );
        for t in &r.tenants {
            assert!(t.instructions > 0, "case {case}");
            assert!(t.ipc > 0.0, "case {case}");
        }
    }
}
